//! Order-based baselines from the paper's related work (§II-B):
//! shortest-job-first [3], smallest-job-first [10] and largest-job-first
//! [11], each with optional EASY-style backfilling.
//!
//! The paper cites studies [5], [13] finding that these orderings "do not
//! necessarily perform better than a straightforward FCFS scheduling" —
//! the `repro baselines` target reproduces that comparison.

use crate::freeze::batch_head_freeze;
use elastisched_sim::{Duration, JobId, JobView, SchedContext, Scheduler, SimTime};
use serde::{Deserialize, Serialize};

/// Queue ordering disciplines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderPolicy {
    /// Shortest estimated runtime first (SJF, ref [3]).
    ShortestJobFirst,
    /// Fewest processors first (smallest-job-first, ref [10]).
    SmallestJobFirst,
    /// Most processors first (largest-job-first, ref [11], motivated by
    /// first-fit-decreasing bin packing).
    LargestJobFirst,
}

impl OrderPolicy {
    fn key(&self, j: &JobView) -> (u64, u64, u64) {
        // Tertiary keys keep the order deterministic and FIFO-fair.
        match self {
            OrderPolicy::ShortestJobFirst => (j.dur.as_secs(), j.submit.as_secs(), j.id.0),
            OrderPolicy::SmallestJobFirst => (u64::from(j.num), j.submit.as_secs(), j.id.0),
            OrderPolicy::LargestJobFirst => {
                (u64::MAX - u64::from(j.num), j.submit.as_secs(), j.id.0)
            }
        }
    }

    fn name(&self) -> &'static str {
        match self {
            OrderPolicy::ShortestJobFirst => "SJF",
            OrderPolicy::SmallestJobFirst => "Smallest-First",
            OrderPolicy::LargestJobFirst => "Largest-First",
        }
    }

    fn name_backfill(&self) -> &'static str {
        match self {
            OrderPolicy::ShortestJobFirst => "SJF-BF",
            OrderPolicy::SmallestJobFirst => "Smallest-First-BF",
            OrderPolicy::LargestJobFirst => "Largest-First-BF",
        }
    }
}

/// A scheduler that keeps its waiting queue sorted by an [`OrderPolicy`]
/// and optionally backfills around a blocked head (EASY-style shadow).
#[derive(Debug)]
pub struct Ordered {
    policy: OrderPolicy,
    backfill: bool,
    queue: Vec<JobView>, // kept sorted by policy key
}

impl Ordered {
    /// Pure ordering, no backfill: a blocked head blocks the queue.
    pub fn new(policy: OrderPolicy) -> Self {
        Ordered {
            policy,
            backfill: false,
            queue: Vec::new(),
        }
    }

    /// Ordering plus EASY-style aggressive backfilling.
    pub fn with_backfill(policy: OrderPolicy) -> Self {
        Ordered {
            backfill: true,
            ..Ordered::new(policy)
        }
    }

    fn insert_sorted(&mut self, job: JobView) {
        let key = self.policy.key(&job);
        let pos = self
            .queue
            .partition_point(|j| self.policy.key(j) < key);
        self.queue.insert(pos, job);
    }
}

impl Scheduler for Ordered {
    fn on_arrival(&mut self, job: JobView) {
        self.insert_sorted(job);
    }

    fn on_queued_ecc(&mut self, id: JobId, num: u32, dur: Duration) {
        if let Some(pos) = self.queue.iter().position(|j| j.id == id) {
            let mut job = self.queue.remove(pos);
            job.num = num;
            job.dur = dur;
            self.insert_sorted(job); // key may have changed
        }
    }

    fn cycle(&mut self, ctx: &mut dyn SchedContext) {
        let now = ctx.now();
        // Start in policy order while the head fits.
        while let Some(h) = self.queue.first() {
            if h.num <= ctx.free() {
                ctx.start(h.id).expect("fit was checked");
                self.queue.remove(0);
            } else {
                break;
            }
        }
        if !self.backfill || self.queue.is_empty() {
            return;
        }
        // EASY-style: reserve for the blocked head, backfill the rest in
        // policy order.
        let head = &self.queue[0];
        let Some(shadow) = batch_head_freeze(ctx.running(), now, ctx.total(), head.num) else {
            return;
        };
        let mut extra = shadow.frec;
        let candidates: Vec<(JobId, u32, SimTime)> = self.queue[1..]
            .iter()
            .map(|j| (j.id, j.num, now + j.dur))
            .collect();
        for (id, num, finish) in candidates {
            if num > ctx.free() {
                continue;
            }
            let delays_head = finish >= shadow.fret;
            if delays_head && num > extra {
                continue;
            }
            ctx.start(id).expect("backfill fit was checked");
            self.queue.retain(|j| j.id != id);
            if delays_head {
                extra -= num;
            }
        }
    }

    fn waiting_len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        if self.backfill {
            self.policy.name_backfill()
        } else {
            self.policy.name()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastisched_sim::{simulate, EccPolicy, JobSpec, Machine};

    fn run(sched: Ordered, jobs: &[JobSpec]) -> elastisched_sim::SimResult {
        simulate(Machine::bluegene_p(), sched, EccPolicy::disabled(), jobs, &[]).unwrap()
    }

    fn started(r: &elastisched_sim::SimResult, id: u64) -> u64 {
        r.outcomes
            .iter()
            .find(|o| o.id.0 == id)
            .unwrap()
            .started
            .as_secs()
    }

    #[test]
    fn sjf_runs_short_jobs_first() {
        // All three queued behind a full-machine job; SJF must order the
        // followers by estimated runtime.
        let jobs = vec![
            JobSpec::batch(1, 0, 320, 100),
            JobSpec::batch(2, 1, 320, 500),
            JobSpec::batch(3, 2, 320, 50),
            JobSpec::batch(4, 3, 320, 200),
        ];
        let r = run(Ordered::new(OrderPolicy::ShortestJobFirst), &jobs);
        assert_eq!(started(&r, 3), 100);
        assert_eq!(started(&r, 4), 150);
        assert_eq!(started(&r, 2), 350);
    }

    #[test]
    fn largest_first_orders_by_size_descending() {
        let jobs = vec![
            JobSpec::batch(1, 0, 320, 100),
            JobSpec::batch(2, 1, 64, 50),
            JobSpec::batch(3, 2, 256, 50),
            JobSpec::batch(4, 3, 128, 50),
        ];
        let r = run(Ordered::new(OrderPolicy::LargestJobFirst), &jobs);
        // At t=100: order is 256, 128, 64 → all fit simultaneously
        // (256 + 64 = 320? no: 256+128 > 320). Largest (3) starts, then
        // 128 (4) doesn't fit, blocking 64 (2) too (no backfill).
        assert_eq!(started(&r, 3), 100);
        assert_eq!(started(&r, 4), 150);
        assert_eq!(started(&r, 2), 150);
    }

    #[test]
    fn smallest_first_with_backfill_fills_holes() {
        let jobs = vec![
            JobSpec::batch(1, 0, 256, 100),
            JobSpec::batch(2, 1, 320, 100), // blocked head after sort? size 320 → last
            JobSpec::batch(3, 2, 32, 30),
        ];
        let r = run(Ordered::with_backfill(OrderPolicy::SmallestJobFirst), &jobs);
        // Smallest-first: job 3 (32) runs immediately beside job 1.
        assert_eq!(started(&r, 3), 2);
    }

    #[test]
    fn backfill_respects_head_reservation() {
        // Head after ordering is the 320-proc job (SJF: dur 10 is
        // shortest). A long 64-proc job must not delay it.
        let jobs = vec![
            JobSpec::batch(1, 0, 256, 100),
            JobSpec::batch(2, 1, 320, 10),
            JobSpec::batch(3, 2, 64, 500),
        ];
        let r = run(Ordered::with_backfill(OrderPolicy::ShortestJobFirst), &jobs);
        assert_eq!(started(&r, 2), 100, "head reservation violated");
        assert!(started(&r, 3) >= 110);
    }

    #[test]
    fn ecc_reorders_queue() {
        let mut s = Ordered::new(OrderPolicy::ShortestJobFirst);
        s.on_arrival(JobSpec::batch(1, 0, 32, 100).to_view());
        s.on_arrival(JobSpec::batch(2, 0, 32, 200).to_view());
        // Job 2 shrinks to 10 s: it must move to the front.
        s.on_queued_ecc(JobId(2), 32, Duration::from_secs(10));
        assert_eq!(s.queue[0].id, JobId(2));
    }

    #[test]
    fn names() {
        assert_eq!(Ordered::new(OrderPolicy::ShortestJobFirst).name(), "SJF");
        assert_eq!(
            Ordered::with_backfill(OrderPolicy::LargestJobFirst).name(),
            "Largest-First-BF"
        );
    }

    #[test]
    fn drains_workloads() {
        let jobs: Vec<JobSpec> = (0..120)
            .map(|i| JobSpec::batch(i + 1, i * 9, 32 * (1 + (i as u32 * 7) % 10), 30 + i % 240))
            .collect();
        for policy in [
            OrderPolicy::ShortestJobFirst,
            OrderPolicy::SmallestJobFirst,
            OrderPolicy::LargestJobFirst,
        ] {
            assert_eq!(run(Ordered::new(policy), &jobs).outcomes.len(), 120);
            assert_eq!(
                run(Ordered::with_backfill(policy), &jobs).outcomes.len(),
                120
            );
        }
    }
}
