//! Order-based baselines from the paper's related work (§II-B):
//! shortest-job-first [3], smallest-job-first [10] and largest-job-first
//! [11], each with optional EASY-style backfilling.
//!
//! The paper cites studies [5], [13] finding that these orderings "do not
//! necessarily perform better than a straightforward FCFS scheduling" —
//! the `repro baselines` target reproduces that comparison.
//!
//! The core shares the stack's FIFO [`BatchQueue`] and imposes its
//! ordering per cycle: starts are chosen by a min-key scan, backfill
//! candidates through a sorted scratch vector. Jobs resized by a queued
//! ECC reorder automatically — the key is recomputed from the live view
//! every cycle.

use crate::freeze::{batch_head_freeze, Freeze};
use crate::queue::BatchQueue;
use crate::stack::{ded_allows, ded_commit, BatchOnly, BatchPolicy, PolicyShared, PolicyStack};
use elastisched_sim::{Duration, JobId, JobView, SchedContext};
use serde::{Deserialize, Serialize};

/// Queue ordering disciplines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderPolicy {
    /// Shortest estimated runtime first (SJF, ref [3]).
    ShortestJobFirst,
    /// Fewest processors first (smallest-job-first, ref [10]).
    SmallestJobFirst,
    /// Most processors first (largest-job-first, ref [11], motivated by
    /// first-fit-decreasing bin packing).
    LargestJobFirst,
}

impl OrderPolicy {
    pub(crate) fn key(&self, j: &JobView) -> (u64, u64, u64) {
        // Tertiary keys keep the order deterministic and FIFO-fair.
        match self {
            OrderPolicy::ShortestJobFirst => (j.dur.as_secs(), j.submit.as_secs(), j.id.0),
            OrderPolicy::SmallestJobFirst => (u64::from(j.num), j.submit.as_secs(), j.id.0),
            OrderPolicy::LargestJobFirst => {
                (u64::MAX - u64::from(j.num), j.submit.as_secs(), j.id.0)
            }
        }
    }

    pub(crate) fn name(&self) -> &'static str {
        match self {
            OrderPolicy::ShortestJobFirst => "SJF",
            OrderPolicy::SmallestJobFirst => "Smallest-First",
            OrderPolicy::LargestJobFirst => "Largest-First",
        }
    }

    pub(crate) fn name_backfill(&self) -> &'static str {
        match self {
            OrderPolicy::ShortestJobFirst => "SJF-BF",
            OrderPolicy::SmallestJobFirst => "Smallest-First-BF",
            OrderPolicy::LargestJobFirst => "Largest-First-BF",
        }
    }

    fn name_dedicated(&self) -> &'static str {
        match self {
            OrderPolicy::ShortestJobFirst => "SJF-D",
            OrderPolicy::SmallestJobFirst => "Smallest-First-D",
            OrderPolicy::LargestJobFirst => "Largest-First-D",
        }
    }

    fn name_backfill_dedicated(&self) -> &'static str {
        match self {
            OrderPolicy::ShortestJobFirst => "SJF-BF-D",
            OrderPolicy::SmallestJobFirst => "Smallest-First-BF-D",
            OrderPolicy::LargestJobFirst => "Largest-First-BF-D",
        }
    }
}

/// A backfill candidate: (policy key, id, num, dur).
type BackfillCandidate = ((u64, u64, u64), JobId, u32, Duration);

/// The order-based policy core: per-cycle min-key starts with optional
/// EASY-style backfilling around the blocked policy-head.
#[derive(Debug)]
pub struct OrderedCore {
    policy: OrderPolicy,
    backfill: bool,
    /// Per-cycle backfill scratch, reused across cycles so steady state
    /// doesn't allocate.
    scratch: Vec<BackfillCandidate>,
}

impl OrderedCore {
    /// Pure ordering, no backfill: a blocked policy-head blocks the queue.
    pub fn new(policy: OrderPolicy) -> Self {
        OrderedCore {
            policy,
            backfill: false,
            scratch: Vec::new(),
        }
    }

    /// Ordering plus EASY-style aggressive backfilling.
    pub fn with_backfill(policy: OrderPolicy) -> Self {
        OrderedCore {
            backfill: true,
            ..OrderedCore::new(policy)
        }
    }

    /// Index of the queue's policy-minimal job, if any.
    fn min_index(&self, queue: &BatchQueue) -> Option<usize> {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| self.policy.key(&w.view))
            .map(|(i, _)| i)
    }
}

impl BatchPolicy for OrderedCore {
    fn name(&self) -> &'static str {
        if self.backfill {
            self.policy.name_backfill()
        } else {
            self.policy.name()
        }
    }

    fn dedicated_name(&self) -> &'static str {
        if self.backfill {
            self.policy.name_backfill_dedicated()
        } else {
            self.policy.name_dedicated()
        }
    }

    fn cycle(
        &mut self,
        queue: &mut BatchQueue,
        ctx: &mut dyn SchedContext,
        mut ded: Option<Freeze>,
        _shared: &mut PolicyShared,
    ) {
        let now = ctx.now();
        // Start in policy order while the policy-head fits.
        let head_num = loop {
            let Some(i) = self.min_index(queue) else { return };
            let w = queue.get(i).expect("index from scan");
            let (id, num, dur) = (w.view.id, w.view.num, w.view.dur);
            if num <= ctx.free() && ded_allows(&ded, now, num, dur) {
                ctx.start(id).expect("fit was checked");
                ded_commit(&mut ded, now, num, dur);
                queue.remove_at(i);
            } else {
                break num;
            }
        };
        if !self.backfill {
            return;
        }
        // EASY-style: reserve for the blocked policy-head, backfill the
        // rest in policy order.
        let Some(shadow) = batch_head_freeze(ctx.running(), now, ctx.total(), head_num) else {
            return;
        };
        if let Some(notes) = ctx.attribution() {
            notes.note_freeze();
        }
        let mut extra = shadow.frec;
        let head_i = self.min_index(queue).expect("head is still queued");
        self.scratch.clear();
        for (i, w) in queue.iter().enumerate() {
            if i != head_i {
                self.scratch
                    .push((self.policy.key(&w.view), w.view.id, w.view.num, w.view.dur));
            }
        }
        self.scratch.sort_unstable();
        for &(_, id, num, dur) in &self.scratch {
            if num > ctx.free() {
                continue;
            }
            let delays_head = shadow.extends(now, dur);
            if delays_head && num > extra {
                continue;
            }
            if !ded_allows(&ded, now, num, dur) {
                continue;
            }
            ctx.start(id).expect("backfill fit was checked");
            queue.remove(id);
            if delays_head {
                extra -= num;
            }
            ded_commit(&mut ded, now, num, dur);
        }
    }
}

/// A scheduler that orders its waiting queue by an [`OrderPolicy`] and
/// optionally backfills around a blocked head (EASY-style shadow).
pub type Ordered = PolicyStack<BatchOnly<OrderedCore>>;

impl Ordered {
    /// Pure ordering, no backfill: a blocked head blocks the queue.
    pub fn new(policy: OrderPolicy) -> Self {
        PolicyStack::batch_only(OrderedCore::new(policy))
    }

    /// Ordering plus EASY-style aggressive backfilling.
    pub fn with_backfill(policy: OrderPolicy) -> Self {
        PolicyStack::batch_only(OrderedCore::with_backfill(policy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastisched_sim::{simulate, EccPolicy, EccSpec, JobSpec, Machine, Scheduler, SimTime};
    use elastisched_test_util::{run_on_bluegene, started};

    #[test]
    fn sjf_runs_short_jobs_first() {
        // All three queued behind a full-machine job; SJF must order the
        // followers by estimated runtime.
        let jobs = vec![
            JobSpec::batch(1, 0, 320, 100),
            JobSpec::batch(2, 1, 320, 500),
            JobSpec::batch(3, 2, 320, 50),
            JobSpec::batch(4, 3, 320, 200),
        ];
        let r = run_on_bluegene(Ordered::new(OrderPolicy::ShortestJobFirst), &jobs);
        assert_eq!(started(&r, 3), 100);
        assert_eq!(started(&r, 4), 150);
        assert_eq!(started(&r, 2), 350);
    }

    #[test]
    fn largest_first_orders_by_size_descending() {
        let jobs = vec![
            JobSpec::batch(1, 0, 320, 100),
            JobSpec::batch(2, 1, 64, 50),
            JobSpec::batch(3, 2, 256, 50),
            JobSpec::batch(4, 3, 128, 50),
        ];
        let r = run_on_bluegene(Ordered::new(OrderPolicy::LargestJobFirst), &jobs);
        // At t=100: order is 256, 128, 64 → all fit simultaneously
        // (256 + 64 = 320? no: 256+128 > 320). Largest (3) starts, then
        // 128 (4) doesn't fit, blocking 64 (2) too (no backfill).
        assert_eq!(started(&r, 3), 100);
        assert_eq!(started(&r, 4), 150);
        assert_eq!(started(&r, 2), 150);
    }

    #[test]
    fn smallest_first_with_backfill_fills_holes() {
        let jobs = vec![
            JobSpec::batch(1, 0, 256, 100),
            JobSpec::batch(2, 1, 320, 100), // blocked head after sort? size 320 → last
            JobSpec::batch(3, 2, 32, 30),
        ];
        let r = run_on_bluegene(Ordered::with_backfill(OrderPolicy::SmallestJobFirst), &jobs);
        // Smallest-first: job 3 (32) runs immediately beside job 1.
        assert_eq!(started(&r, 3), 2);
    }

    #[test]
    fn backfill_respects_head_reservation() {
        // Head after ordering is the 320-proc job (SJF: dur 10 is
        // shortest). A long 64-proc job must not delay it.
        let jobs = vec![
            JobSpec::batch(1, 0, 256, 100),
            JobSpec::batch(2, 1, 320, 10),
            JobSpec::batch(3, 2, 64, 500),
        ];
        let r = run_on_bluegene(Ordered::with_backfill(OrderPolicy::ShortestJobFirst), &jobs);
        assert_eq!(started(&r, 2), 100, "head reservation violated");
        assert!(started(&r, 3) >= 110);
    }

    #[test]
    fn ecc_reorders_queue() {
        // Jobs 2 and 3 wait behind a full-machine job. Job 3 is longer at
        // submit, but a queued reduce-time ECC makes it the shortest —
        // SJF must then run it first.
        let jobs = vec![
            JobSpec::batch(1, 0, 320, 100),
            JobSpec::batch(2, 1, 320, 100),
            JobSpec::batch(3, 2, 320, 200),
        ];
        let eccs = vec![EccSpec::reduce_time(JobId(3), SimTime::from_secs(10), 150)];
        let r = simulate(
            Machine::bluegene_p(),
            Ordered::new(OrderPolicy::ShortestJobFirst),
            EccPolicy::time_only(),
            &jobs,
            &eccs,
        )
        .unwrap();
        assert_eq!(started(&r, 3), 100, "shrunk job moves to the front");
        assert_eq!(started(&r, 2), 150);
    }

    #[test]
    fn names() {
        assert_eq!(Ordered::new(OrderPolicy::ShortestJobFirst).name(), "SJF");
        assert_eq!(
            Ordered::with_backfill(OrderPolicy::LargestJobFirst).name(),
            "Largest-First-BF"
        );
        assert_eq!(
            PolicyStack::with_dedicated(OrderedCore::with_backfill(OrderPolicy::SmallestJobFirst), 0)
                .name(),
            "Smallest-First-BF-D"
        );
    }

    #[test]
    fn drains_workloads() {
        let jobs: Vec<JobSpec> = (0..120)
            .map(|i| JobSpec::batch(i + 1, i * 9, 32 * (1 + (i as u32 * 7) % 10), 30 + i % 240))
            .collect();
        for policy in [
            OrderPolicy::ShortestJobFirst,
            OrderPolicy::SmallestJobFirst,
            OrderPolicy::LargestJobFirst,
        ] {
            assert_eq!(
                run_on_bluegene(Ordered::new(policy), &jobs).outcomes.len(),
                120
            );
            assert_eq!(
                run_on_bluegene(Ordered::with_backfill(policy), &jobs)
                    .outcomes
                    .len(),
                120
            );
        }
    }
}
