//! Per-category metric breakdowns.
//!
//! The paper's analysis hinges on how performance differs by job
//! *population*: small vs large jobs (`P_S`), batch vs dedicated
//! (`P_D`). This module slices the per-job outcomes accordingly —
//! useful both for analysis and for validating the schedulers'
//! fairness characteristics (e.g. that Delayed-LOS's packing gains do
//! not starve large jobs).

use crate::stats::Summary;
use elastisched_sim::JobOutcome;
use serde::{Deserialize, Serialize};

/// Metrics for one slice of the job population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Slice label.
    pub label: String,
    /// Number of jobs in the slice.
    pub jobs: usize,
    /// Mean waiting time, seconds.
    pub mean_wait: f64,
    /// Waiting-time distribution.
    pub wait_summary: Summary,
    /// Mean runtime, seconds.
    pub mean_runtime: f64,
    /// Mean size, processors.
    pub mean_size: f64,
}

impl ClassMetrics {
    fn of<'a>(label: &str, outcomes: impl Iterator<Item = &'a JobOutcome>) -> ClassMetrics {
        let slice: Vec<&JobOutcome> = outcomes.collect();
        let waits: Vec<f64> = slice.iter().map(|o| o.wait.as_secs_f64()).collect();
        let runtimes: Vec<f64> = slice.iter().map(|o| o.runtime.as_secs_f64()).collect();
        let sizes: Vec<f64> = slice.iter().map(|o| o.num as f64).collect();
        ClassMetrics {
            label: label.to_string(),
            jobs: slice.len(),
            mean_wait: crate::stats::mean(&waits),
            wait_summary: Summary::of(&waits),
            mean_runtime: crate::stats::mean(&runtimes),
            mean_size: crate::stats::mean(&sizes),
        }
    }
}

/// Breakdown of a run by job size and class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Jobs with `num ≤ small_threshold`.
    pub small: ClassMetrics,
    /// Jobs with `num > small_threshold`.
    pub large: ClassMetrics,
    /// Batch jobs.
    pub batch: ClassMetrics,
    /// Dedicated jobs.
    pub dedicated: ClassMetrics,
    /// The size threshold used, in processors.
    pub small_threshold: u32,
}

/// Slice outcomes by size (at `small_threshold` processors — the paper's
/// small jobs are ≤ 96 = 3 × 32) and by class.
pub fn breakdown(outcomes: &[JobOutcome], small_threshold: u32) -> Breakdown {
    Breakdown {
        small: ClassMetrics::of(
            "small",
            outcomes.iter().filter(|o| o.num <= small_threshold),
        ),
        large: ClassMetrics::of(
            "large",
            outcomes.iter().filter(|o| o.num > small_threshold),
        ),
        batch: ClassMetrics::of(
            "batch",
            outcomes.iter().filter(|o| o.requested_start.is_none()),
        ),
        dedicated: ClassMetrics::of(
            "dedicated",
            outcomes.iter().filter(|o| o.requested_start.is_some()),
        ),
        small_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastisched_sim::{Duration, JobId, SimTime};

    fn outcome(id: u64, num: u32, wait: u64, dedicated: bool) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            submit: SimTime::ZERO,
            requested_start: dedicated.then_some(SimTime::ZERO),
            started: SimTime::from_secs(wait),
            finished: SimTime::from_secs(wait + 100),
            num,
            runtime: Duration::from_secs(100),
            wait: Duration::from_secs(wait),
            attribution: None,
        }
    }

    #[test]
    fn slices_by_size_and_class() {
        let os = vec![
            outcome(1, 32, 10, false),
            outcome(2, 96, 20, false),
            outcome(3, 128, 100, true),
            outcome(4, 320, 200, true),
        ];
        let b = breakdown(&os, 96);
        assert_eq!(b.small.jobs, 2);
        assert_eq!(b.large.jobs, 2);
        assert_eq!(b.batch.jobs, 2);
        assert_eq!(b.dedicated.jobs, 2);
        assert!((b.small.mean_wait - 15.0).abs() < 1e-12);
        assert!((b.large.mean_wait - 150.0).abs() < 1e-12);
        assert!((b.dedicated.mean_size - 224.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_zeroed() {
        let os = vec![outcome(1, 32, 10, false)];
        let b = breakdown(&os, 96);
        assert_eq!(b.large.jobs, 0);
        assert_eq!(b.large.mean_wait, 0.0);
        assert_eq!(b.dedicated.jobs, 0);
    }
}
