//! # elastisched-metrics
//!
//! Metrics and statistics for scheduling experiments: the paper's three
//! evaluation metrics (mean utilization, mean job waiting time, slowdown)
//! derived from simulation results ([`report`]), summary statistics
//! ([`stats`]), and from-scratch Kolmogorov–Smirnov goodness-of-fit tests
//! ([`ks`]) mirroring the model validation of Lublin & Feitelson.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accum;
pub mod breakdown;
pub mod ks;
pub mod report;
pub mod special;
pub mod stats;
pub mod timeline;
pub mod validate;

pub use accum::RunAccumulator;
pub use breakdown::{breakdown, Breakdown, ClassMetrics};
pub use ks::{ks_test_cdf, ks_test_two_sample, KsResult};
pub use report::RunMetrics;
pub use special::{gamma_cdf, gamma_p, hyper_gamma_cdf, ln_gamma};
pub use timeline::{gantt, sparkline, utilization_profile};
pub use validate::{occupancy, validate_schedule, Occupancy, Violation};
pub use stats::{
    improvement_higher_is_better, improvement_lower_is_better, jain_fairness, mean, median,
    quantile, std_dev, Summary,
};
