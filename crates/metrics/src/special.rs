//! Special functions needed for distribution CDFs.
//!
//! The workload models use Gamma distributions; validating a Gamma
//! sampler with the Kolmogorov–Smirnov test requires the Gamma CDF,
//! i.e. the regularized lower incomplete gamma function `P(a, x)`.
//! Implemented from scratch: `ln Γ` via the Lanczos approximation, and
//! `P(a, x)` via the standard series (for `x < a + 1`) and continued
//! fraction (otherwise) expansions.

/// Natural log of the Gamma function, Lanczos approximation (g = 7,
/// n = 9 coefficients). Accurate to ~15 significant digits for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)] // canonical Lanczos g=7 coefficients
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)` for `a > 0`,
/// `x ≥ 0`. This is the CDF of a Gamma(shape = a, scale = 1) variable.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Series expansion of `P(a, x)`, converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

/// Continued fraction for `Q(a, x) = 1 - P(a, x)` (modified Lentz),
/// converges fast for `x ≥ a + 1`.
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    ((-x + a * x.ln() - ln_gamma(a)).exp() * h).clamp(0.0, 1.0)
}

/// CDF of a Gamma distribution with shape `alpha` and scale `beta`.
pub fn gamma_cdf(alpha: f64, beta: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(alpha, x / beta)
}

/// CDF of a two-component hyper-Gamma mixture (first component chosen
/// with probability `p`).
#[allow(clippy::too_many_arguments)]
pub fn hyper_gamma_cdf(a1: f64, b1: f64, a2: f64, b2: f64, p: f64, x: f64) -> f64 {
    p * gamma_cdf(a1, b1, x) + (1.0 - p) * gamma_cdf(a2, b2, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma(n as f64 + 1.0);
            assert!(
                (lg - f64::ln(f)).abs() < 1e-12,
                "ln Γ({}) = {lg}, want {}",
                n + 1,
                f64::ln(f)
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        let lg = ln_gamma(0.5);
        assert!((lg - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Γ(3/2) = √π / 2.
        let lg = ln_gamma(1.5);
        assert!((lg - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // Shape 1 ⇒ exponential: P(1, x) = 1 - e^{-x}.
        for x in [0.1, 0.5, 1.0, 2.0, 10.0] {
            let p = gamma_p(1.0, x);
            let want = 1.0 - (-x).exp();
            assert!((p - want).abs() < 1e-12, "x={x}: {p} vs {want}");
        }
    }

    #[test]
    fn gamma_p_is_monotone_cdf() {
        let a = 4.2;
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.1;
            let p = gamma_p(a, x);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev - 1e-14, "not monotone at x={x}");
            prev = p;
        }
        assert!(gamma_p(a, 100.0) > 0.999999);
        assert_eq!(gamma_p(a, 0.0), 0.0);
    }

    #[test]
    fn gamma_p_median_of_large_shape_near_mean() {
        // Gamma(312, ·): by CLT the CDF at the mean is ≈ 0.5.
        let p = gamma_p(312.0, 312.0);
        assert!((p - 0.5).abs() < 0.02, "P(312, 312) = {p}");
    }

    #[test]
    fn gamma_cdf_scales() {
        // P(a, x/b) identity.
        let c1 = gamma_cdf(4.2, 0.94, 4.0);
        let c2 = gamma_p(4.2, 4.0 / 0.94);
        assert!((c1 - c2).abs() < 1e-15);
        assert_eq!(gamma_cdf(4.2, 0.94, -1.0), 0.0);
    }

    #[test]
    fn hyper_gamma_mixture_blends() {
        let x = 5.0;
        let lo = hyper_gamma_cdf(4.2, 0.94, 312.0, 0.03, 0.0, x);
        let hi = hyper_gamma_cdf(4.2, 0.94, 312.0, 0.03, 1.0, x);
        let mid = hyper_gamma_cdf(4.2, 0.94, 312.0, 0.03, 0.5, x);
        assert!((mid - 0.5 * (lo + hi)).abs() < 1e-14);
    }
}
