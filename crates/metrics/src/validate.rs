//! Independent schedule validation.
//!
//! Given only the per-job outcomes of a simulation (start, finish,
//! processors), these checks re-derive machine occupancy with a
//! sweep-line — completely independent of the engine's own bookkeeping —
//! and verify the physical feasibility of the schedule. Property tests
//! use this as an oracle against the simulator.

use elastisched_sim::{JobOutcome, SimTime};

/// A violation found by [`validate_schedule`].
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Machine capacity exceeded during `[at, until)`.
    Oversubscribed {
        /// Start of the overloaded interval.
        at: SimTime,
        /// Processors in use.
        used: u32,
        /// Machine capacity.
        capacity: u32,
    },
    /// A job started before its submit time.
    StartedBeforeSubmit {
        /// Offending job (its id's raw value).
        job: u64,
    },
    /// A dedicated job started before its requested start time.
    StartedBeforeRequestedStart {
        /// Offending job.
        job: u64,
    },
    /// finish ≠ started + runtime.
    InconsistentTimes {
        /// Offending job.
        job: u64,
    },
}

/// Occupancy report from the sweep-line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Maximum processors simultaneously in use.
    pub peak: u32,
    /// Busy processor-seconds (independent re-derivation).
    pub busy_area: f64,
}

/// Sweep-line over job outcomes: returns peak occupancy and busy area.
pub fn occupancy(outcomes: &[JobOutcome]) -> Occupancy {
    // Events: (+num at start), (-num at finish).
    let mut events: Vec<(SimTime, i64)> = Vec::with_capacity(outcomes.len() * 2);
    for o in outcomes {
        events.push((o.started, i64::from(o.num)));
        events.push((o.finished, -i64::from(o.num)));
    }
    // Releases before acquisitions at the same instant (finish-at-t frees
    // capacity for a start-at-t).
    events.sort_by_key(|&(t, delta)| (t, delta));
    let mut used: i64 = 0;
    let mut peak: i64 = 0;
    let mut area = 0.0;
    let mut last = events.first().map(|&(t, _)| t).unwrap_or(SimTime::ZERO);
    for (t, delta) in events {
        area += used as f64 * t.saturating_since(last).as_secs_f64();
        used += delta;
        peak = peak.max(used);
        last = t;
    }
    Occupancy {
        peak: peak.max(0) as u32,
        busy_area: area,
    }
}

/// Validate a completed schedule against machine `capacity`. Returns all
/// violations found (empty = feasible).
pub fn validate_schedule(outcomes: &[JobOutcome], capacity: u32) -> Vec<Violation> {
    let mut violations = Vec::new();
    for o in outcomes {
        if o.started < o.submit {
            violations.push(Violation::StartedBeforeSubmit { job: o.id.0 });
        }
        if let Some(req) = o.requested_start {
            if o.started < req {
                violations.push(Violation::StartedBeforeRequestedStart { job: o.id.0 });
            }
        }
        if o.started + o.runtime != o.finished {
            violations.push(Violation::InconsistentTimes { job: o.id.0 });
        }
    }
    // Sweep-line capacity check with interval reporting.
    let mut events: Vec<(SimTime, i64)> = Vec::with_capacity(outcomes.len() * 2);
    for o in outcomes {
        events.push((o.started, i64::from(o.num)));
        events.push((o.finished, -i64::from(o.num)));
    }
    events.sort_by_key(|&(t, delta)| (t, delta));
    let mut used: i64 = 0;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            used += events[i].1;
            i += 1;
        }
        if used > i64::from(capacity) {
            let until = events.get(i).map(|&(t, _)| t).unwrap_or(t);
            violations.push(Violation::Oversubscribed {
                at: t,
                used: used as u32,
                capacity,
            });
            let _ = until;
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastisched_sim::{Duration, JobId};

    fn outcome(id: u64, submit: u64, started: u64, finished: u64, num: u32) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            submit: SimTime::from_secs(submit),
            requested_start: None,
            started: SimTime::from_secs(started),
            finished: SimTime::from_secs(finished),
            num,
            runtime: Duration::from_secs(finished - started),
            wait: Duration::from_secs(started.saturating_sub(submit)),
            attribution: None,
        }
    }

    #[test]
    fn feasible_schedule_passes() {
        let os = vec![
            outcome(1, 0, 0, 100, 256),
            outcome(2, 0, 0, 50, 64),
            outcome(3, 0, 100, 200, 320),
        ];
        assert!(validate_schedule(&os, 320).is_empty());
        let occ = occupancy(&os);
        assert_eq!(occ.peak, 320);
        assert!((occ.busy_area - (256.0 * 100.0 + 64.0 * 50.0 + 320.0 * 100.0)).abs() < 1e-9);
    }

    #[test]
    fn detects_oversubscription() {
        let os = vec![outcome(1, 0, 0, 100, 256), outcome(2, 0, 50, 150, 128)];
        let v = validate_schedule(&os, 320);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::Oversubscribed { used: 384, .. })));
    }

    #[test]
    fn back_to_back_at_boundary_is_feasible() {
        // Finish at t=100 releases capacity for a start at t=100.
        let os = vec![outcome(1, 0, 0, 100, 320), outcome(2, 0, 100, 200, 320)];
        assert!(validate_schedule(&os, 320).is_empty());
        assert_eq!(occupancy(&os).peak, 320);
    }

    #[test]
    fn detects_time_travel() {
        let mut o = outcome(1, 50, 10, 100, 32);
        o.submit = SimTime::from_secs(50);
        let v = validate_schedule(&[o], 320);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::StartedBeforeSubmit { job: 1 })));
    }

    #[test]
    fn detects_early_dedicated_start() {
        let mut o = outcome(1, 0, 10, 100, 32);
        o.requested_start = Some(SimTime::from_secs(20));
        let v = validate_schedule(&[o], 320);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::StartedBeforeRequestedStart { job: 1 })));
    }

    #[test]
    fn detects_inconsistent_times() {
        let mut o = outcome(1, 0, 0, 100, 32);
        o.runtime = Duration::from_secs(55);
        let v = validate_schedule(&[o], 320);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::InconsistentTimes { job: 1 })));
    }

    #[test]
    fn empty_schedule_is_valid() {
        assert!(validate_schedule(&[], 320).is_empty());
        assert_eq!(occupancy(&[]).peak, 0);
    }
}
