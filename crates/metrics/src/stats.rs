//! Summary statistics for experiment series.

/// Mean of a slice; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; 0.0 for fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on sorted data;
/// 0.0 for empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in metric series"));
    quantile_of_sorted(&sorted, q)
}

/// [`quantile`] over data the caller has already sorted ascending.
pub(crate) fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 0.5-quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// A compact five-number-plus-moments summary of a series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a series (all zeros for empty input).
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                median: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        Summary::of_unsorted_in_place(&mut sorted)
    }

    /// [`Summary::of`], but sorting the caller's buffer in place instead
    /// of taking a copy — the hot path for per-run metric derivation,
    /// which owns its wait series and never needs the original order
    /// again. Bit-identical to [`Summary::of`]: the moments are computed
    /// *before* the sort, reading the series in its given order.
    pub fn of_unsorted_in_place(xs: &mut [f64]) -> Summary {
        if xs.is_empty() {
            return Summary::of(&[]);
        }
        // Moments read the series in its given order (so they are
        // bit-identical to a direct mean/std_dev call); the order
        // statistics share one in-place sort instead of re-sorting per
        // quantile.
        // Unstable sort: no merge buffer, and equal f64 values are
        // indistinguishable so the order statistics are unchanged.
        let (mean, std_dev) = (mean(xs), std_dev(xs));
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in metric series"));
        Summary {
            n: xs.len(),
            mean,
            std_dev,
            min: xs[0],
            median: quantile_of_sorted(xs, 0.5),
            p95: quantile_of_sorted(xs, 0.95),
            max: xs[xs.len() - 1],
        }
    }
}

/// Relative improvement of `ours` over `theirs` in percent, for
/// *lower-is-better* metrics (wait time, slowdown):
/// `(theirs - ours) / theirs × 100`.
pub fn improvement_lower_is_better(ours: f64, theirs: f64) -> f64 {
    if theirs == 0.0 {
        return 0.0;
    }
    (theirs - ours) / theirs * 100.0
}

/// Relative improvement of `ours` over `theirs` in percent, for
/// *higher-is-better* metrics (utilization):
/// `(ours - theirs) / theirs × 100`.
pub fn improvement_higher_is_better(ours: f64, theirs: f64) -> f64 {
    if theirs == 0.0 {
        return 0.0;
    }
    (ours - theirs) / theirs * 100.0
}

/// Jain's fairness index of a non-negative series:
/// `(Σx)² / (n · Σx²)` ∈ `[1/n, 1]`; 1 means perfectly equal.
/// Used on per-job slowdowns to quantify whether a scheduler's packing
/// gains come at the cost of starving a subpopulation.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_bounds_and_extremes() {
        // Equal values → 1.
        assert!((jain_fairness(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        // One job hogging everything → 1/n.
        let v = jain_fairness(&[0.0, 0.0, 0.0, 12.0]);
        assert!((v - 0.25).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        // Monotone sanity: a more skewed series is less fair.
        assert!(jain_fairness(&[1.0, 2.0]) > jain_fairness(&[1.0, 10.0]));
    }

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(Summary::of(&[]).n, 0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert!((median(&xs) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn summary_fields() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        assert!(s.p95 > 4.0);
    }

    #[test]
    fn improvements() {
        // Ours waits 68.12 s vs theirs 100 s → 31.88 % better.
        assert!((improvement_lower_is_better(68.12, 100.0) - 31.88).abs() < 1e-9);
        // Ours utilizes 0.9365 vs theirs 0.9 → ≈ 4.06 % better.
        assert!((improvement_higher_is_better(0.9365, 0.9) - 4.0555555).abs() < 1e-4);
        assert_eq!(improvement_lower_is_better(1.0, 0.0), 0.0);
        assert_eq!(improvement_higher_is_better(1.0, 0.0), 0.0);
    }

    #[test]
    fn single_point_summary() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }
}
