//! Kolmogorov–Smirnov tests.
//!
//! Lublin & Feitelson validate their workload models with the K-S
//! goodness-of-fit test (paper §IV-D); this module provides both the
//! one-sample test (empirical sample vs. a theoretical CDF) and the
//! two-sample test, implemented from scratch. The asymptotic p-value uses
//! the Kolmogorov distribution series
//! `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} e^{-2k²λ²}`.

/// Result of a K-S test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The K-S statistic `D` (supremum CDF distance).
    pub statistic: f64,
    /// Asymptotic p-value (probability of observing `D` this large under
    /// the null hypothesis).
    pub p_value: f64,
}

impl KsResult {
    /// Reject the null hypothesis at significance `alpha`?
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Kolmogorov distribution tail `Q(λ)`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += if k % 2 == 1 { term } else { -term };
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample K-S test of `sample` against a theoretical CDF.
///
/// # Panics
/// If `sample` is empty or contains NaN.
pub fn ks_test_cdf(sample: &[f64], cdf: impl Fn(f64) -> f64) -> KsResult {
    assert!(!sample.is_empty(), "K-S test needs data");
    let mut xs: Vec<f64> = sample.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in K-S sample"));
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let ecdf_hi = (i as f64 + 1.0) / n;
        let ecdf_lo = i as f64 / n;
        d = d.max((ecdf_hi - f).abs()).max((f - ecdf_lo).abs());
    }
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// Two-sample K-S test.
///
/// # Panics
/// If either sample is empty or contains NaN.
pub fn ks_test_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "K-S test needs data");
    let mut xs: Vec<f64> = a.to_vec();
    let mut ys: Vec<f64> = b.to_vec();
    xs.sort_by(|p, q| p.partial_cmp(q).expect("NaN in K-S sample"));
    ys.sort_by(|p, q| p.partial_cmp(q).expect("NaN in K-S sample"));
    let (n, m) = (xs.len(), ys.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n && j < m {
        let x = xs[i];
        let y = ys[j];
        let v = x.min(y);
        while i < n && xs[i] <= v {
            i += 1;
        }
        while j < m && ys[j] <= v {
            j += 1;
        }
        let fa = i as f64 / n as f64;
        let fb = j as f64 / m as f64;
        d = d.max((fa - fb).abs());
    }
    let ne = (n * m) as f64 / (n + m) as f64;
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    #[test]
    fn uniform_sample_passes_uniform_cdf() {
        let xs = uniform_sample(2_000, 1);
        let r = ks_test_cdf(&xs, |x| x.clamp(0.0, 1.0));
        assert!(
            !r.rejects_at(0.01),
            "uniform sample rejected: D={} p={}",
            r.statistic,
            r.p_value
        );
    }

    #[test]
    fn shifted_sample_fails_uniform_cdf() {
        let xs: Vec<f64> = uniform_sample(2_000, 2).iter().map(|x| x * 0.8).collect();
        let r = ks_test_cdf(&xs, |x| x.clamp(0.0, 1.0));
        assert!(r.rejects_at(0.01), "shifted sample accepted: p={}", r.p_value);
    }

    #[test]
    fn exponential_sample_passes_exponential_cdf() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean = 5.0;
        let xs: Vec<f64> = (0..2_000)
            .map(|_| -mean * (1.0 - rng.gen::<f64>()).ln())
            .collect();
        let r = ks_test_cdf(&xs, |x| 1.0 - (-x / mean).exp());
        assert!(!r.rejects_at(0.01), "p={}", r.p_value);
        // And against the wrong mean it must fail.
        let r2 = ks_test_cdf(&xs, |x| 1.0 - (-x / (2.0 * mean)).exp());
        assert!(r2.rejects_at(0.01));
    }

    #[test]
    fn two_sample_same_distribution_passes() {
        let a = uniform_sample(1_500, 4);
        let b = uniform_sample(1_500, 5);
        let r = ks_test_two_sample(&a, &b);
        assert!(!r.rejects_at(0.01), "p={}", r.p_value);
    }

    #[test]
    fn two_sample_different_distributions_fail() {
        let a = uniform_sample(1_500, 6);
        let b: Vec<f64> = uniform_sample(1_500, 7).iter().map(|x| x * x).collect();
        let r = ks_test_two_sample(&a, &b);
        assert!(r.rejects_at(0.01), "p={}", r.p_value);
    }

    #[test]
    fn kolmogorov_q_boundaries() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(3.0) < 1e-6);
        let q1 = kolmogorov_q(0.5);
        let q2 = kolmogorov_q(1.0);
        assert!(q1 > q2, "Q must be decreasing");
    }

    #[test]
    fn statistic_is_in_unit_interval() {
        let a = uniform_sample(100, 8);
        let r = ks_test_cdf(&a, |x| x.clamp(0.0, 1.0));
        assert!((0.0..=1.0).contains(&r.statistic));
        assert!((0.0..=1.0).contains(&r.p_value));
    }
}
