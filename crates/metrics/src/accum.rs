//! Streaming per-job metric accumulation.
//!
//! [`RunAccumulator`] folds [`JobOutcome`]s into the paper's run metrics
//! one completion at a time, so a streamed run (`Engine::
//! run_streaming_folded`) can derive a full [`RunMetrics`] without ever
//! retaining the outcome vector. Two storage modes:
//!
//! * **exact** — keeps the per-job wait series (O(jobs) memory) and
//!   produces *bit-identical* numbers to [`RunMetrics::from_result`];
//!   `from_result` itself is implemented on this path.
//! * **bounded** — groups waits by whole seconds in a `BTreeMap`
//!   (memory proportional to *distinct* wait values, not jobs — an
//!   archive-scale replay sees thousands of distinct waits across
//!   millions of jobs). Waits are whole seconds in this simulator, so
//!   every summary field is still exact *except* `std_dev`, whose
//!   floating-point accumulation order differs (grouped ascending vs
//!   completion order) — equal to the exact value up to ulp-level
//!   rounding.
//!
//! Every other metric (means, slowdowns, histograms, dedicated-job
//! accounting) is accumulated identically in both modes, in completion
//! order, and is bit-identical to the materialized derivation.

use crate::report::RunMetrics;
use crate::stats::Summary;
use elastisched_sim::{profile, JobOutcome, LogHistogram, Phase, SimResult};
use std::collections::BTreeMap;

/// Wait-series storage backing the summary's order statistics.
enum WaitStore {
    /// The full series, in completion order.
    Exact(Vec<f64>),
    /// Whole-second wait → occurrence count.
    Bounded(BTreeMap<u64, u64>),
}

/// Folds job completions into [`RunMetrics`] incrementally. See the
/// module docs for the exact/bounded trade-off.
pub struct RunAccumulator {
    store: WaitStore,
    n: usize,
    wait_sum: f64,
    runtime_sum: f64,
    bounded_sum: f64,
    ded_count: usize,
    ded_wait_sum: f64,
    on_time: usize,
    wait_hist: LogHistogram,
    slowdown_hist: LogHistogram,
    started: std::time::Instant,
}

impl RunAccumulator {
    fn with_store(store: WaitStore) -> Self {
        RunAccumulator {
            store,
            n: 0,
            wait_sum: 0.0,
            runtime_sum: 0.0,
            bounded_sum: 0.0,
            ded_count: 0,
            ded_wait_sum: 0.0,
            on_time: 0,
            wait_hist: LogHistogram::new(),
            slowdown_hist: LogHistogram::new(),
            started: std::time::Instant::now(),
        }
    }

    /// Exact mode: retains the wait series, bit-identical to
    /// [`RunMetrics::from_result`].
    pub fn exact() -> Self {
        RunAccumulator::with_store(WaitStore::Exact(Vec::new()))
    }

    /// Exact mode with the wait series pre-sized for `jobs` completions
    /// (one allocation instead of a growth doubling chain).
    pub fn exact_with_capacity(jobs: usize) -> Self {
        RunAccumulator::with_store(WaitStore::Exact(Vec::with_capacity(jobs)))
    }

    /// Bounded mode: memory proportional to distinct whole-second wait
    /// values; `std_dev` exact up to ulp-level rounding, everything else
    /// bit-identical.
    pub fn bounded() -> Self {
        RunAccumulator::with_store(WaitStore::Bounded(BTreeMap::new()))
    }

    /// Completions folded so far.
    pub fn jobs(&self) -> usize {
        self.n
    }

    /// Fold one completion. Call in completion order — the
    /// floating-point sums are order-sensitive, and completion order is
    /// what the materialized derivation uses.
    pub fn record(&mut self, o: &JobOutcome) {
        let wait = o.wait.as_secs_f64();
        let runtime = o.runtime.as_secs_f64();
        match &mut self.store {
            WaitStore::Exact(waits) => waits.push(wait),
            WaitStore::Bounded(counts) => *counts.entry(o.wait.as_secs()).or_insert(0) += 1,
        }
        self.wait_sum += wait;
        self.runtime_sum += runtime;
        let bounded = ((wait + runtime) / runtime.max(10.0)).max(1.0);
        self.bounded_sum += bounded;
        self.wait_hist.record(o.wait.as_secs());
        self.slowdown_hist.record((bounded * 1000.0) as u64);
        if o.requested_start.is_some() {
            self.ded_count += 1;
            self.ded_wait_sum += wait;
            if o.wait.as_secs() == 0 {
                self.on_time += 1;
            }
        }
        self.n += 1;
    }

    /// Close the accumulation and assemble the metrics, taking the
    /// run-level quantities (utilization, makespan, ECC and scheduler
    /// counters) from `result`. `result.outcomes` is *not* read — a
    /// folded streamed run legitimately leaves it empty.
    ///
    /// Also assembles the run's phase profile the same way
    /// [`RunMetrics::from_result`] does: DP/engine-loop time from the
    /// result's counters, this accumulator's own lifetime as the
    /// derivation phase, and any pending thread-local `PhaseTimer`
    /// recordings absorbed (`profile::take_pending`).
    pub fn finish(mut self, result: &SimResult) -> RunMetrics {
        let n = self.n;
        let mean_of = |sum: f64, count: usize| if count == 0 { 0.0 } else { sum / count as f64 };
        let mean_wait = mean_of(self.wait_sum, n);
        let mean_runtime = mean_of(self.runtime_sum, n);
        let slowdown = if mean_runtime > 0.0 {
            (mean_wait + mean_runtime) / mean_runtime
        } else {
            1.0
        };
        let wait_summary = match &mut self.store {
            WaitStore::Exact(waits) => Summary::of_unsorted_in_place(waits),
            WaitStore::Bounded(counts) => summary_of_counts(counts, n, mean_wait),
        };
        let mut phase_profile = profile::take_pending();
        phase_profile.record(Phase::DpSolve, result.sched_stats.dp_nanos);
        phase_profile.record(Phase::EngineLoop, result.engine.engine_nanos);
        phase_profile.record(
            Phase::MetricsDerivation,
            self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
        RunMetrics {
            scheduler: result.scheduler.to_string(),
            jobs: n,
            utilization: result.mean_utilization(),
            mean_wait,
            slowdown,
            mean_bounded_slowdown: mean_of(self.bounded_sum, n),
            mean_runtime,
            wait_summary,
            mean_dedicated_delay: mean_of(self.ded_wait_sum, self.ded_count),
            dedicated_jobs: self.ded_count,
            dedicated_on_time: self.on_time,
            makespan: result.makespan.as_secs() as f64,
            eccs_applied: result.ecc.applied(),
            reconfig_grows: result.reconfig.grows,
            reconfig_shrinks: result.reconfig.shrinks,
            reconfig_procs_granted: result.reconfig.procs_granted,
            reconfig_procs_reclaimed: result.reconfig.procs_reclaimed,
            reconfig_cost_secs: result.reconfig.cost_secs,
            dp_cache_hits: result.sched_stats.dp_cache_hits,
            dp_cache_misses: result.sched_stats.dp_cache_misses,
            dp_nanos: result.sched_stats.dp_nanos,
            dp_incremental_hits: result.sched_stats.dp_incremental_hits,
            dp_incremental_rebuilds: result.sched_stats.dp_incremental_rebuilds,
            engine_events: result.engine.events,
            engine_cycles: result.engine.cycles,
            events_coalesced: result.engine.events_coalesced,
            queue_ops: result.engine.queue_ops,
            peak_queue_len: result.engine.peak_queue_len,
            engine_nanos: result.engine.engine_nanos,
            wait_hist: self.wait_hist,
            slowdown_hist: self.slowdown_hist,
            cycle_hist: result
                .trace
                .as_deref()
                .map(|t| t.cycle_hist)
                .unwrap_or_default(),
            phase_profile,
            timeline: result.timeline.clone(),
            attribution: result.attribution.clone(),
        }
    }
}

/// [`Summary`] over a grouped whole-second series: order statistics are
/// exact (computed from cumulative counts with the same interpolation as
/// the sorted-series path); `mean` is the caller's completion-order sum;
/// `std_dev` groups the squared deviations by value, ascending — equal
/// to the completion-order accumulation up to ulp-level rounding.
fn summary_of_counts(counts: &BTreeMap<u64, u64>, n: usize, mean: f64) -> Summary {
    if n == 0 {
        return Summary::of(&[]);
    }
    let var_sum: f64 = counts
        .iter()
        .map(|(&v, &c)| {
            let d = v as f64 - mean;
            c as f64 * d * d
        })
        .sum();
    let std_dev = if n < 2 {
        0.0
    } else {
        (var_sum / (n - 1) as f64).sqrt()
    };
    Summary {
        n,
        mean,
        std_dev,
        min: *counts.keys().next().expect("non-empty") as f64,
        median: quantile_of_counts(counts, n, 0.5),
        p95: quantile_of_counts(counts, n, 0.95),
        max: *counts.keys().next_back().expect("non-empty") as f64,
    }
}

/// The value at (possibly interpolated) rank `q·(n−1)` of the grouped
/// series — the same linear interpolation `quantile_of_sorted` applies
/// to an explicit sorted series.
fn quantile_of_counts(counts: &BTreeMap<u64, u64>, n: usize, q: f64) -> f64 {
    let q = q.clamp(0.0, 1.0);
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as u64;
    let hi = pos.ceil() as u64;
    let mut lo_val = 0.0;
    let mut hi_val = 0.0;
    let mut seen = 0u64;
    for (&v, &c) in counts {
        let last_rank_here = seen + c - 1;
        if lo >= seen && lo <= last_rank_here {
            lo_val = v as f64;
        }
        if hi >= seen && hi <= last_rank_here {
            hi_val = v as f64;
            break;
        }
        seen += c;
    }
    if lo == hi {
        lo_val
    } else {
        let frac = pos - lo as f64;
        lo_val * (1.0 - frac) + hi_val * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastisched_sim::{Duration, EccStats, JobId, SchedStats, SimTime};

    fn outcome(id: u64, submit: u64, started: u64, finished: u64, num: u32) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            submit: SimTime::from_secs(submit),
            requested_start: None,
            started: SimTime::from_secs(started),
            finished: SimTime::from_secs(finished),
            num,
            runtime: Duration::from_secs(finished - started),
            wait: Duration::from_secs(started - submit),
            attribution: None,
        }
    }

    fn result(outcomes: Vec<JobOutcome>) -> SimResult {
        let makespan = outcomes.iter().map(|o| o.finished).max().unwrap_or(SimTime::ZERO);
        let busy: f64 = outcomes
            .iter()
            .map(|o| o.num as f64 * o.runtime.as_secs_f64())
            .sum();
        SimResult {
            scheduler: "TEST",
            outcomes,
            machine_total: 320,
            busy_area: busy,
            first_arrival: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            makespan,
            ecc: EccStats::default(),
            reconfig: Default::default(),
            samples: Vec::new(),
            sched_stats: SchedStats::default(),
            engine: elastisched_sim::EngineStats::default(),
            trace: None,
            timeline: Default::default(),
            attribution: Default::default(),
        }
    }

    fn mixed_outcomes() -> Vec<JobOutcome> {
        let mut out = Vec::new();
        for i in 0..50u64 {
            // Waits 0,7,14,…, runtimes 5..105, a dedicated job every 5th.
            let submit = i * 10;
            let started = submit + (i % 8) * 7;
            let finished = started + 5 + i * 2;
            let mut o = outcome(i + 1, submit, started, finished, 32 + (i % 4) as u32 * 32);
            if i % 5 == 0 {
                o.requested_start = Some(SimTime::from_secs(submit));
            }
            out.push(o);
        }
        out
    }

    #[test]
    fn exact_fold_matches_from_result_bit_for_bit() {
        let r = result(mixed_outcomes());
        let folded = {
            let mut acc = RunAccumulator::exact_with_capacity(r.outcomes.len());
            for o in &r.outcomes {
                acc.record(o);
            }
            acc.finish(&r)
        };
        let direct = RunMetrics::from_result(&r);
        assert_eq!(folded, direct);
        // Bit-level, beyond the PartialEq subset:
        assert_eq!(folded.wait_summary.std_dev.to_bits(), direct.wait_summary.std_dev.to_bits());
        assert_eq!(folded.mean_bounded_slowdown.to_bits(), direct.mean_bounded_slowdown.to_bits());
        assert_eq!(folded.wait_hist, direct.wait_hist);
        assert_eq!(folded.slowdown_hist, direct.slowdown_hist);
    }

    #[test]
    fn bounded_fold_agrees_with_exact() {
        let r = result(mixed_outcomes());
        let mut exact = RunAccumulator::exact();
        let mut bounded = RunAccumulator::bounded();
        for o in &r.outcomes {
            exact.record(o);
            bounded.record(o);
        }
        let e = exact.finish(&r);
        let b = bounded.finish(&r);
        // Everything but std_dev is exact; waits are whole seconds.
        assert_eq!(e.wait_summary.n, b.wait_summary.n);
        assert_eq!(e.wait_summary.mean.to_bits(), b.wait_summary.mean.to_bits());
        assert_eq!(e.wait_summary.min, b.wait_summary.min);
        assert_eq!(e.wait_summary.median, b.wait_summary.median);
        assert_eq!(e.wait_summary.p95, b.wait_summary.p95);
        assert_eq!(e.wait_summary.max, b.wait_summary.max);
        let rel = (e.wait_summary.std_dev - b.wait_summary.std_dev).abs()
            / e.wait_summary.std_dev.max(1e-12);
        assert!(rel < 1e-12, "std_dev diverged beyond ulp noise: {rel}");
        assert_eq!(e.mean_wait.to_bits(), b.mean_wait.to_bits());
        assert_eq!(e.mean_bounded_slowdown.to_bits(), b.mean_bounded_slowdown.to_bits());
        assert_eq!(e.wait_hist, b.wait_hist);
        assert_eq!(e.slowdown_hist, b.slowdown_hist);
        assert_eq!(e.dedicated_jobs, b.dedicated_jobs);
        assert_eq!(e.dedicated_on_time, b.dedicated_on_time);
        assert_eq!(e, b, "PartialEq subset must agree");
    }

    #[test]
    fn grouped_quantiles_match_sorted_series() {
        // 1,1,1,2,5,5,9 → check every interpolation case.
        let series = [1.0, 1.0, 1.0, 2.0, 5.0, 5.0, 9.0];
        let mut counts = BTreeMap::new();
        for &v in &series {
            *counts.entry(v as u64).or_insert(0u64) += 1;
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0] {
            let grouped = quantile_of_counts(&counts, series.len(), q);
            let direct = crate::stats::quantile(&series, q);
            assert_eq!(grouped.to_bits(), direct.to_bits(), "q={q}");
        }
    }

    #[test]
    fn empty_accumulator_finishes_clean() {
        let r = result(Vec::new());
        let m = RunAccumulator::bounded().finish(&r);
        assert_eq!(m.jobs, 0);
        assert_eq!(m.mean_wait, 0.0);
        assert_eq!(m.wait_summary.n, 0);
        let m = RunAccumulator::exact().finish(&r);
        assert_eq!(m.jobs, 0);
    }

    #[test]
    fn single_value_bounded_summary() {
        let r = result(vec![outcome(1, 0, 3, 10, 32)]);
        let mut acc = RunAccumulator::bounded();
        acc.record(&r.outcomes[0]);
        assert_eq!(acc.jobs(), 1);
        let m = acc.finish(&r);
        assert_eq!(m.wait_summary.min, 3.0);
        assert_eq!(m.wait_summary.median, 3.0);
        assert_eq!(m.wait_summary.max, 3.0);
        assert_eq!(m.wait_summary.std_dev, 0.0);
    }
}
