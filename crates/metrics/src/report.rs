//! Experiment-level metrics (paper §V).
//!
//! The paper evaluates three metrics: **mean system utilization**, **mean
//! job waiting time**, and **slowdown**, defined as
//! `(avg. waiting time + avg. runtime) / avg. runtime`. This module
//! derives them (plus extra diagnostics) from a [`SimResult`].

use crate::stats::Summary;
use elastisched_sim::{AttributionProfile, LogHistogram, PhaseProfile, RunTimeline, SimResult};
use serde::{Deserialize, Serialize};

/// The paper's metrics for one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Scheduler name.
    pub scheduler: String,
    /// Number of completed jobs.
    pub jobs: usize,
    /// Mean machine utilization over `[0, makespan]`.
    pub utilization: f64,
    /// Mean job waiting time, seconds. Batch jobs wait from arrival;
    /// dedicated jobs from `max(arrival, requested start)`.
    pub mean_wait: f64,
    /// The paper's slowdown: `(mean_wait + mean_runtime) / mean_runtime`.
    pub slowdown: f64,
    /// Mean per-job bounded slowdown `max(1, (wait+run)/max(run, 10s))`
    /// (a standard robustness companion; not in the paper's tables).
    pub mean_bounded_slowdown: f64,
    /// Mean job runtime, seconds.
    pub mean_runtime: f64,
    /// Waiting-time distribution.
    pub wait_summary: Summary,
    /// Mean start-delay of dedicated jobs past their requested start,
    /// seconds (0 when the workload has none).
    pub mean_dedicated_delay: f64,
    /// Number of dedicated jobs.
    pub dedicated_jobs: usize,
    /// Dedicated jobs started exactly on time.
    pub dedicated_on_time: usize,
    /// Makespan, seconds.
    pub makespan: f64,
    /// ECCs applied (running + queued).
    pub eccs_applied: u64,
    /// Scheduler-initiated grows applied to running malleable jobs
    /// (0 for rigid workloads or non-`+m` stacks).
    #[serde(default)]
    pub reconfig_grows: u64,
    /// Scheduler-initiated shrinks applied to running malleable jobs.
    #[serde(default)]
    pub reconfig_shrinks: u64,
    /// Processors granted across all grows.
    #[serde(default)]
    pub reconfig_procs_granted: u64,
    /// Processors reclaimed across all shrinks.
    #[serde(default)]
    pub reconfig_procs_reclaimed: u64,
    /// Total reconfiguration cost charged to resized jobs, seconds.
    #[serde(default)]
    pub reconfig_cost_secs: u64,
    /// DP solves answered from the scheduler's selection cache
    /// (0 for schedulers without DP kernels).
    #[serde(default)]
    pub dp_cache_hits: u64,
    /// DP solves that actually ran a kernel.
    #[serde(default)]
    pub dp_cache_misses: u64,
    /// Cumulative wall-clock nanoseconds the scheduler spent in DP
    /// solves.
    #[serde(default)]
    pub dp_nanos: u64,
    /// DP cache misses answered by extending/replaying the solver's
    /// retained cross-cycle reachability table.
    #[serde(default)]
    pub dp_incremental_hits: u64,
    /// DP cache misses where the retained table was rebuilt from row
    /// zero.
    #[serde(default)]
    pub dp_incremental_rebuilds: u64,
    /// Events the engine dispatched over the run.
    #[serde(default)]
    pub engine_events: u64,
    /// Scheduler cycles the engine fired (one per distinct timestamp).
    #[serde(default)]
    pub engine_cycles: u64,
    /// Events coalesced into a cycle shared with an earlier same-instant
    /// event (scheduler invocations saved).
    #[serde(default)]
    pub events_coalesced: u64,
    /// Event-queue pushes + pops.
    #[serde(default)]
    pub queue_ops: u64,
    /// Peak event-queue population.
    #[serde(default)]
    pub peak_queue_len: u64,
    /// Wall-clock nanoseconds spent in the engine's event loop.
    #[serde(default)]
    pub engine_nanos: u64,
    /// Streaming log-bucketed distribution of per-job waiting times,
    /// in whole seconds.
    #[serde(default)]
    pub wait_hist: LogHistogram,
    /// Streaming log-bucketed distribution of per-job bounded slowdowns,
    /// in milli-units (a slowdown of 1.5 records as 1500).
    #[serde(default)]
    pub slowdown_hist: LogHistogram,
    /// Streaming log-bucketed distribution of per-cycle scheduler
    /// wall-clock nanoseconds. Populated only when the run was traced
    /// with timing enabled (see `TraceSink`); empty otherwise.
    #[serde(default)]
    pub cycle_hist: LogHistogram,
    /// Where this run's wall time went, by coarse phase: DP solves and
    /// the engine loop come from the simulator's own timers, metrics
    /// derivation is timed here, and workload generation is absorbed
    /// from any `PhaseTimer` the caller dropped on this thread before
    /// deriving (see [`RunMetrics::from_result`]). Wall-clock detail,
    /// excluded from equality like `engine_nanos`.
    #[serde(default)]
    pub phase_profile: PhaseProfile,
    /// Budget-bounded time series of periodic engine samples, populated
    /// when the run had its telemetry sampler enabled (empty
    /// otherwise). Observability detail, excluded from equality like
    /// `phase_profile`.
    #[serde(default)]
    pub timeline: RunTimeline,
    /// Run-level wait-time attribution: where the fleet's queue wait
    /// went, by cause, with the top capacity blockers (populated when
    /// the run had attribution enabled; empty otherwise). Observability
    /// detail, excluded from equality like `phase_profile`.
    #[serde(default)]
    pub attribution: AttributionProfile,
}

/// Equality ignores `dp_nanos`, `engine_nanos`, the engine-loop
/// diagnostic counters, and the streaming histograms: the nanos fields
/// are wall-clock timing that varies between otherwise identical
/// (deterministic) runs, the loop counters describe *how* the engine
/// processed events, not what the simulation computed, and the
/// histograms are derived observability detail (fixtures recorded
/// before they existed must still compare equal). Two metrics are equal
/// when every simulation-derived quantity matches — the DP cache and
/// incremental counters included, since the solver's call sequence is
/// deterministic for a given workload and policy.
impl PartialEq for RunMetrics {
    fn eq(&self, other: &Self) -> bool {
        self.scheduler == other.scheduler
            && self.jobs == other.jobs
            && self.utilization == other.utilization
            && self.mean_wait == other.mean_wait
            && self.slowdown == other.slowdown
            && self.mean_bounded_slowdown == other.mean_bounded_slowdown
            && self.mean_runtime == other.mean_runtime
            && self.wait_summary == other.wait_summary
            && self.mean_dedicated_delay == other.mean_dedicated_delay
            && self.dedicated_jobs == other.dedicated_jobs
            && self.dedicated_on_time == other.dedicated_on_time
            && self.makespan == other.makespan
            && self.eccs_applied == other.eccs_applied
            && self.reconfig_grows == other.reconfig_grows
            && self.reconfig_shrinks == other.reconfig_shrinks
            && self.reconfig_procs_granted == other.reconfig_procs_granted
            && self.reconfig_procs_reclaimed == other.reconfig_procs_reclaimed
            && self.reconfig_cost_secs == other.reconfig_cost_secs
            && self.dp_cache_hits == other.dp_cache_hits
            && self.dp_cache_misses == other.dp_cache_misses
            && self.dp_incremental_hits == other.dp_incremental_hits
            && self.dp_incremental_rebuilds == other.dp_incremental_rebuilds
    }
}

impl RunMetrics {
    /// Derive the metrics from a completed simulation.
    ///
    /// Also assembles the run's [`PhaseProfile`]: the derivation pass
    /// itself is timed here, DP/engine-loop time is copied from the
    /// result's counters, and — so callers can attribute workload
    /// generation with a plain RAII timer — this thread's pending
    /// [`profile::PhaseTimer`] recordings are **drained and absorbed**
    /// into the profile (`profile::take_pending`).
    pub fn from_result(result: &SimResult) -> RunMetrics {
        // One fold pass over the outcomes, in completion order, on the
        // exact accumulator — the same path a streamed run drives one
        // completion at a time (see [`crate::accum::RunAccumulator`]),
        // so materialized and folded derivations are bit-identical by
        // construction.
        let mut acc = crate::accum::RunAccumulator::exact_with_capacity(result.outcomes.len());
        for o in &result.outcomes {
            acc.record(o);
        }
        acc.finish(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastisched_sim::{
        profile, Duration, EccStats, JobId, JobOutcome, Phase, SchedStats, SimResult, SimTime,
    };

    fn outcome(id: u64, submit: u64, started: u64, finished: u64, num: u32) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            submit: SimTime::from_secs(submit),
            requested_start: None,
            started: SimTime::from_secs(started),
            finished: SimTime::from_secs(finished),
            num,
            runtime: Duration::from_secs(finished - started),
            wait: Duration::from_secs(started - submit),
            attribution: None,
        }
    }

    fn result(outcomes: Vec<JobOutcome>) -> SimResult {
        let makespan = outcomes.iter().map(|o| o.finished).max().unwrap();
        let busy: f64 = outcomes
            .iter()
            .map(|o| o.num as f64 * o.runtime.as_secs_f64())
            .sum();
        SimResult {
            scheduler: "TEST",
            outcomes,
            machine_total: 320,
            busy_area: busy,
            first_arrival: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            makespan,
            ecc: EccStats::default(),
            reconfig: Default::default(),
            samples: Vec::new(),
            sched_stats: SchedStats::default(),
            engine: elastisched_sim::EngineStats::default(),
            trace: None,
            timeline: Default::default(),
            attribution: Default::default(),
        }
    }

    #[test]
    fn paper_slowdown_definition() {
        // Two jobs: waits {0, 100}, runtimes {100, 100}.
        // mean wait = 50, mean runtime = 100 → slowdown = 1.5.
        let r = result(vec![
            outcome(1, 0, 0, 100, 320),
            outcome(2, 0, 100, 200, 320),
        ]);
        let m = RunMetrics::from_result(&r);
        assert!((m.mean_wait - 50.0).abs() < 1e-12);
        assert!((m.slowdown - 1.5).abs() < 1e-12);
        assert!((m.utilization - 1.0).abs() < 1e-12);
        assert_eq!(m.jobs, 2);
    }

    #[test]
    fn dedicated_delay_accounting() {
        let mut o1 = outcome(1, 0, 500, 600, 64);
        o1.requested_start = Some(SimTime::from_secs(500));
        o1.wait = Duration::ZERO; // started exactly on time
        let mut o2 = outcome(2, 0, 250, 300, 64);
        o2.requested_start = Some(SimTime::from_secs(200));
        o2.wait = Duration::from_secs(50);
        let r = result(vec![o1, o2]);
        let m = RunMetrics::from_result(&r);
        assert_eq!(m.dedicated_jobs, 2);
        assert_eq!(m.dedicated_on_time, 1);
        assert!((m.mean_dedicated_delay - 25.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_floors() {
        // Tiny job: runtime 1 s, wait 0 → bounded slowdown clamps to 1.
        let r = result(vec![outcome(1, 0, 0, 1, 32)]);
        let m = RunMetrics::from_result(&r);
        assert!((m.mean_bounded_slowdown - 1.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_histograms_populated() {
        let r = result(vec![
            outcome(1, 0, 0, 100, 32),   // wait 0
            outcome(2, 0, 100, 200, 32), // wait 100
        ]);
        let m = RunMetrics::from_result(&r);
        assert_eq!(m.wait_hist.n, 2);
        assert_eq!(m.wait_hist.max, 100);
        assert_eq!(m.slowdown_hist.n, 2);
        // Job 1: bounded slowdown 1.0 → 1000 milli-units.
        // Job 2: (100+100)/100 = 2.0 → 2000.
        assert_eq!(m.slowdown_hist.max, 2000);
        assert!(m.cycle_hist.is_empty(), "untraced run has no cycle hist");
    }

    #[test]
    fn phase_profile_stamped_and_absorbs_pending_timers() {
        let _ = profile::take_pending(); // isolate this test thread
        profile::record_pending(Phase::WorkloadGen, 1234);
        let mut r = result(vec![outcome(1, 0, 0, 100, 32)]);
        r.sched_stats.dp_nanos = 55;
        r.engine.engine_nanos = 99;
        let m = RunMetrics::from_result(&r);
        assert_eq!(m.phase_profile.nanos_of(Phase::WorkloadGen), 1234);
        assert_eq!(m.phase_profile.nanos_of(Phase::DpSolve), 55);
        assert_eq!(m.phase_profile.nanos_of(Phase::EngineLoop), 99);
        assert_eq!(m.phase_profile.calls_of(Phase::MetricsDerivation), 1);
        // The pending profile was drained into this run.
        assert!(profile::take_pending().is_empty());
        // Equality ignores the profile (wall-clock diagnostic), so a
        // re-derivation without the pending timer still compares equal.
        let again = RunMetrics::from_result(&r);
        assert_eq!(m, again);
        assert_eq!(again.phase_profile.nanos_of(Phase::WorkloadGen), 0);
    }

    #[test]
    fn wait_summary_populated() {
        let r = result(vec![
            outcome(1, 0, 0, 10, 32),
            outcome(2, 0, 10, 20, 32),
            outcome(3, 0, 90, 100, 32),
        ]);
        let m = RunMetrics::from_result(&r);
        assert_eq!(m.wait_summary.n, 3);
        assert_eq!(m.wait_summary.max, 90.0);
        assert_eq!(m.wait_summary.min, 0.0);
    }
}
