//! Time-resolved views of a schedule: utilization profiles and a text
//! Gantt chart, reconstructed purely from job outcomes.

use elastisched_sim::{JobOutcome, SimTime};
use std::fmt::Write as _;

/// Utilization sampled over fixed-width buckets: returns
/// `(bucket_start_seconds, mean_utilization_in_bucket)` pairs covering
/// `[0, makespan]`.
pub fn utilization_profile(
    outcomes: &[JobOutcome],
    machine_total: u32,
    bucket_secs: u64,
) -> Vec<(u64, f64)> {
    assert!(bucket_secs > 0, "bucket width must be positive");
    let makespan = outcomes
        .iter()
        .map(|o| o.finished.as_secs())
        .max()
        .unwrap_or(0);
    if makespan == 0 {
        return Vec::new();
    }
    let n_buckets = makespan.div_ceil(bucket_secs) as usize;
    let mut area = vec![0.0f64; n_buckets];
    for o in outcomes {
        let (s, f) = (o.started.as_secs(), o.finished.as_secs());
        if f <= s {
            continue;
        }
        let first = (s / bucket_secs) as usize;
        let last = ((f - 1) / bucket_secs) as usize;
        for (b, slot) in area
            .iter_mut()
            .enumerate()
            .take(last.min(n_buckets - 1) + 1)
            .skip(first)
        {
            let b_start = b as u64 * bucket_secs;
            let b_end = b_start + bucket_secs;
            let overlap = f.min(b_end).saturating_sub(s.max(b_start));
            *slot += o.num as f64 * overlap as f64;
        }
    }
    area.iter()
        .enumerate()
        .map(|(b, &a)| {
            let b_start = b as u64 * bucket_secs;
            let width = bucket_secs.min(makespan - b_start) as f64;
            (
                b_start,
                (a / (machine_total as f64 * width)).clamp(0.0, 1.0),
            )
        })
        .collect()
}

/// A one-line text sparkline of a utilization profile.
pub fn sparkline(profile: &[(u64, f64)]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    profile
        .iter()
        .map(|&(_, u)| LEVELS[((u * 7.0).round() as usize).min(7)])
        .collect()
}

/// A text Gantt chart: one row per job, time on the x-axis scaled to
/// `width` columns. Rows are sorted by start time; at most `max_rows`
/// jobs are shown (earliest starts first).
pub fn gantt(outcomes: &[JobOutcome], width: usize, max_rows: usize) -> String {
    let mut rows: Vec<&JobOutcome> = outcomes.iter().collect();
    rows.sort_by_key(|o| (o.started, o.id));
    rows.truncate(max_rows);
    let makespan = outcomes
        .iter()
        .map(|o| o.finished)
        .max()
        .unwrap_or(SimTime::ZERO)
        .as_secs()
        .max(1);
    let col = |t: u64| ((t as f64 / makespan as f64) * (width.max(1) as f64 - 1.0)) as usize;
    let mut out = String::new();
    let _ = writeln!(out, "time 0 .. {makespan}s ({width} cols)");
    for o in rows {
        let s = col(o.started.as_secs());
        let f = col(o.finished.as_secs()).max(s);
        let mut line: Vec<char> = vec![' '; width];
        let submit = col(o.submit.as_secs());
        for c in line.iter_mut().take(s).skip(submit) {
            *c = '·'; // waiting
        }
        for c in line.iter_mut().take(f + 1).skip(s) {
            *c = if o.requested_start.is_some() { '#' } else { '=' };
        }
        let _ = writeln!(
            out,
            "{:>6} {:>4}p |{}|",
            format!("#{}", o.id.0),
            o.num,
            line.into_iter().collect::<String>()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastisched_sim::{Duration, JobId};

    fn outcome(id: u64, started: u64, finished: u64, num: u32) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            submit: SimTime::ZERO,
            requested_start: None,
            started: SimTime::from_secs(started),
            finished: SimTime::from_secs(finished),
            num,
            runtime: Duration::from_secs(finished - started),
            wait: Duration::from_secs(started),
            attribution: None,
        }
    }

    #[test]
    fn profile_integrates_to_busy_area() {
        let os = vec![outcome(1, 0, 100, 160), outcome(2, 50, 150, 160)];
        let profile = utilization_profile(&os, 320, 10);
        assert_eq!(profile.len(), 15);
        // First 50 s: 160/320 = 0.5; 50–100 s: 1.0; 100–150 s: 0.5.
        assert!((profile[0].1 - 0.5).abs() < 1e-12);
        assert!((profile[7].1 - 1.0).abs() < 1e-12);
        assert!((profile[12].1 - 0.5).abs() < 1e-12);
        // Total integral equals busy area.
        let area: f64 = profile.iter().map(|&(_, u)| u * 10.0 * 320.0).sum();
        assert!((area - (160.0 * 100.0 * 2.0)).abs() < 1e-6);
    }

    #[test]
    fn partial_last_bucket_normalized() {
        let os = vec![outcome(1, 0, 95, 320)];
        let profile = utilization_profile(&os, 320, 10);
        assert_eq!(profile.len(), 10);
        assert!((profile[9].1 - 1.0).abs() < 1e-12, "{:?}", profile[9]);
    }

    #[test]
    fn non_multiple_makespan_integral_identity() {
        // Makespan 137 s with 10 s buckets: the tail bucket covers only
        // 7 s and must be weighted by that width, not the full 10 s —
        // otherwise the width-weighted integral under-counts and the
        // profile's mean under-reports utilization.
        let os = vec![
            outcome(1, 0, 137, 160),
            outcome(2, 30, 137, 96),
            outcome(3, 60, 110, 64),
        ];
        let busy: f64 = os
            .iter()
            .map(|o| o.num as f64 * o.runtime.as_secs_f64())
            .sum();
        let makespan = 137u64;
        let bucket = 10u64;
        let profile = utilization_profile(&os, 320, bucket);
        assert_eq!(profile.len(), 14);
        // Width-weighted integral over covered widths == busy area.
        let area: f64 = profile
            .iter()
            .map(|&(start, u)| {
                let width = bucket.min(makespan - start) as f64;
                u * width * 320.0
            })
            .sum();
        assert!((area - busy).abs() < 1e-6, "area {area} != busy {busy}");
        // The tail bucket is full-rate for job 1+2 (256/320), and would
        // read 0.56 if wrongly divided by the full 10 s width.
        assert!((profile[13].1 - 0.8).abs() < 1e-12, "{:?}", profile[13]);
    }

    #[test]
    fn empty_outcomes_empty_profile() {
        assert!(utilization_profile(&[], 320, 10).is_empty());
    }

    #[test]
    fn sparkline_length_matches() {
        let os = vec![outcome(1, 0, 100, 320)];
        let p = utilization_profile(&os, 320, 10);
        let s = sparkline(&p);
        assert_eq!(s.chars().count(), p.len());
        assert!(s.chars().all(|c| c == '█'));
    }

    #[test]
    fn gantt_renders_rows() {
        let mut o2 = outcome(2, 100, 200, 64);
        o2.requested_start = Some(SimTime::from_secs(100));
        let os = vec![outcome(1, 0, 100, 320), o2];
        let g = gantt(&os, 40, 10);
        assert!(g.contains("#1"));
        assert!(g.contains("#2"));
        assert!(g.contains('='), "batch bars use '='");
        assert!(g.contains('#'), "dedicated bars use '#'");
        assert_eq!(g.lines().count(), 3);
    }

    #[test]
    fn gantt_caps_rows() {
        let os: Vec<JobOutcome> = (0..20).map(|i| outcome(i, i, i + 10, 32)).collect();
        let g = gantt(&os, 40, 5);
        assert_eq!(g.lines().count(), 6); // header + 5 rows
    }
}
