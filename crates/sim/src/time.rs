//! Simulated time.
//!
//! The simulator runs on an integer virtual clock with one-second
//! resolution, matching the Standard Workload Format in which all times
//! (submit, wait, run) are integral seconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since the start of the experiment.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A span of simulated time, in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(pub u64);

impl SimTime {
    /// Time zero, the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// The raw number of seconds since time zero.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Span from `earlier` to `self`, saturating at zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: Duration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from raw seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs)
    }

    /// The raw number of seconds.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: Duration) -> Duration {
        Duration(self.0.saturating_add(other.0))
    }

    /// This span as a floating-point number of seconds (for metrics).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: duration too large"),
        )
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(rhs <= self, "SimTime subtraction underflow");
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}s", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::from_secs(10) + Duration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    fn sub_yields_duration() {
        let d = SimTime::from_secs(15) - SimTime::from_secs(10);
        assert_eq!(d, Duration::from_secs(5));
    }

    #[test]
    fn saturating_since_clamps() {
        let d = SimTime::from_secs(3).saturating_since(SimTime::from_secs(10));
        assert_eq!(d, Duration::ZERO);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn sub_underflow_panics_in_debug() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(Duration::from_secs(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(Duration::from_secs(7)),
            Some(SimTime::from_secs(7))
        );
    }

    #[test]
    fn duration_saturating_ops() {
        let a = Duration::from_secs(5);
        let b = Duration::from_secs(9);
        assert_eq!(a.saturating_sub(b), Duration::ZERO);
        assert_eq!(b.saturating_sub(a), Duration::from_secs(4));
        assert_eq!(a.saturating_add(b), Duration::from_secs(14));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(42).to_string(), "t=42s");
        assert_eq!(Duration::from_secs(42).to_string(), "42s");
    }
}
