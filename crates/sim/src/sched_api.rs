//! The interface between the simulation engine and scheduling policies.
//!
//! The engine owns ground truth (machine state, running set, job records,
//! event queue). A [`Scheduler`] owns only its waiting-queue data
//! structures and decides, at each scheduling cycle, which waiting jobs to
//! activate via [`SchedContext::start`].

use crate::attribution::AttrNotes;
use crate::job::{JobClass, JobId};
use crate::machine::MachineError;
use crate::running::RunningSet;
use crate::time::{Duration, SimTime};
use elastisched_trace::TraceSink;
use std::fmt;

/// DP-kernel wall-clock timing is sampled: only one kernel invocation
/// in every `DP_NANOS_SAMPLE_EVERY` reads the clock, and the measured
/// span is multiplied back up by this factor. Shared by the solver (to
/// sample) and by anything interpreting `dp_nanos` (to know it is an
/// extrapolated estimate, not an exact sum). Must be a power of two —
/// the solver masks with `DP_NANOS_SAMPLE_EVERY - 1`.
pub const DP_NANOS_SAMPLE_EVERY: u64 = 16;

/// A scheduler-facing snapshot of one waiting job.
///
/// `dur` is the *current effective* user estimate — ECCs applied while the
/// job was queued are already folded in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobView {
    /// Job id.
    pub id: JobId,
    /// Requested processors (current effective value).
    pub num: u32,
    /// Current effective user-estimated duration.
    pub dur: Duration,
    /// Arrival time.
    pub submit: SimTime,
    /// Batch or dedicated.
    pub class: JobClass,
}

impl crate::job::JobSpec {
    /// The scheduler-facing view of this spec (no ECCs applied yet).
    pub fn to_view(&self) -> JobView {
        JobView::from(self)
    }
}

impl From<&crate::job::JobSpec> for JobView {
    fn from(spec: &crate::job::JobSpec) -> Self {
        JobView {
            id: spec.id,
            num: spec.num,
            dur: spec.dur,
            submit: spec.submit,
            class: spec.class,
        }
    }
}

/// Why a start request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartError {
    /// The job id is unknown to the engine.
    UnknownJob(JobId),
    /// The job is not in the waiting state (double start, or already done).
    NotWaiting(JobId),
    /// The machine refused the allocation.
    Machine(MachineError),
}

impl fmt::Display for StartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartError::UnknownJob(id) => write!(f, "{id} is unknown"),
            StartError::NotWaiting(id) => write!(f, "{id} is not waiting"),
            StartError::Machine(e) => write!(f, "machine error: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

impl From<MachineError> for StartError {
    fn from(e: MachineError) -> Self {
        StartError::Machine(e)
    }
}

/// Performance counters a scheduler may expose about its decision
/// kernels (the LOS family's DP solver). Schedulers without such
/// kernels report all-zero stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// DP solves answered from the scheduler's selection cache.
    pub dp_cache_hits: u64,
    /// DP solves that actually ran a kernel.
    pub dp_cache_misses: u64,
    /// *Estimated* wall-clock nanoseconds spent in DP solves: timing is
    /// sampled 1-in-[`DP_NANOS_SAMPLE_EVERY`] and extrapolated, so this
    /// is statistically accurate over a run but not an exact sum.
    pub dp_nanos: u64,
    /// Cache misses answered by extending/replaying the solver's
    /// retained cross-cycle reachability table (at least one stored
    /// row reused).
    pub dp_incremental_hits: u64,
    /// Cache misses where the retained table was rebuilt from row zero
    /// (first solve, capacity/unit re-layout, or head-of-queue change).
    pub dp_incremental_rebuilds: u64,
    /// Head-of-queue jobs force-started (LOS family).
    pub head_force_starts: u64,
    /// Head-of-queue skip decisions (delayed-LOS waiting choice).
    pub head_skips: u64,
    /// Jobs started out of a DP selection.
    pub dp_starts: u64,
    /// Dedicated-node promotions performed by wrapper policies.
    pub dedicated_promotions: u64,
}

/// Engine services available to a scheduler during a cycle.
pub trait SchedContext {
    /// Current simulated time `t`.
    fn now(&self) -> SimTime;
    /// Total machine processors `M`.
    fn total(&self) -> u32;
    /// Free processors `m`.
    fn free(&self) -> u32;
    /// Machine allocation unit (node-group size).
    fn unit(&self) -> u32;
    /// The active-job list `A`, sorted by residual time.
    fn running(&self) -> &RunningSet;
    /// Activate a waiting job now: allocate processors and schedule its
    /// completion. On success the job is no longer the scheduler's
    /// responsibility.
    fn start(&mut self, id: JobId) -> Result<(), StartError>;
    /// Current effective duration of a waiting job (after queued ECCs).
    /// `None` if the job is not waiting.
    fn waiting_dur(&self, id: JobId) -> Option<Duration>;
    /// Request a scheduler wakeup (an empty event forcing a cycle) at `at`.
    /// Used to revisit dedicated jobs at their requested start times.
    fn request_wakeup(&mut self, at: SimTime);
    /// The engine's wait-queue snapshot: every waiting job, in arrival
    /// order, with queued ECCs already folded into `num`/`dur`.
    ///
    /// The engine maintains this incrementally (arrivals append, starts
    /// and ECCs mark it dirty, the borrow compacts lazily), so reading it
    /// every cycle costs nothing when nothing changed — schedulers should
    /// borrow it instead of mirroring arrivals into their own vectors.
    /// The slice is invalidated by [`SchedContext::start`]; re-borrow
    /// after starting a job.
    fn waiting_jobs(&mut self) -> &[JobView];
    /// The run's trace sink, when tracing is enabled. Schedulers record
    /// decision events through this (via the `trace_event!` macro, which
    /// skips event construction entirely when the sink is absent).
    /// Defaults to `None` so contexts without tracing need no code.
    fn trace(&mut self) -> Option<&mut TraceSink> {
        None
    }
    /// The run's wait-attribution notes, when attribution is enabled.
    /// Policies record per-cycle causes the engine cannot infer —
    /// deliberate head skips and freeze windows — through this; like
    /// [`SchedContext::trace`] it defaults to `None` so disabled runs
    /// cost one branch at each note site.
    fn attribution(&mut self) -> Option<&mut AttrNotes> {
        None
    }
    /// The unit-aligned width bounds `(floor, ceiling)` a *running*
    /// malleable job may be resized within via
    /// [`SchedContext::shrink_running`] / [`SchedContext::grow_running`].
    /// `None` for unknown, non-running, or rigid jobs, and in contexts
    /// without a malleability implementation (the default).
    fn malleable_bounds(&self, id: JobId) -> Option<(u32, u32)> {
        let _ = id;
        None
    }
    /// Shrink a running malleable job by up to `delta` processors (the
    /// engine clamps to the allocation unit and the job's range floor),
    /// releasing the processors immediately. Resizing is
    /// work-conserving: the job's remaining runtime is rescaled by
    /// `old/new` (it runs longer on fewer processors), then the
    /// reconfiguration cost is added on top. Returns the processors
    /// actually reclaimed (0 in contexts without malleability, the
    /// default).
    fn shrink_running(&mut self, id: JobId, delta: u32) -> u32 {
        let _ = (id, delta);
        0
    }
    /// Grow a running malleable job by up to `delta` processors out of
    /// the free pool (clamped to the unit, the free capacity, and the
    /// job's range ceiling). Work-conserving like
    /// [`SchedContext::shrink_running`]: the remaining runtime shrinks by
    /// `old/new` and the reconfiguration cost is added — so a grow only
    /// pays off while `remaining × (1 − old/new)` exceeds the cost.
    /// Returns the processors actually granted (0 by default).
    fn grow_running(&mut self, id: JobId, delta: u32) -> u32 {
        let _ = (id, delta);
        0
    }
    /// The reconfiguration cost the engine would charge for moving
    /// `delta` processors on one resize. Policies use this to decide
    /// whether a grow pays off (time saved must exceed the charge)
    /// before committing to it. Free in contexts without a
    /// malleability implementation (the default).
    fn reconfig_charge(&self, delta: u32) -> Duration {
        let _ = delta;
        Duration::ZERO
    }
}

/// A scheduling policy.
///
/// The engine calls `on_arrival` when a job's submit event fires,
/// `on_queued_ecc` when an ECC changes a *waiting* job's requirements
/// (running-job ECCs are engine-internal: the running set and completion
/// event are updated in place), and `cycle` once per distinct event
/// timestamp after all events at that instant are dispatched.
pub trait Scheduler {
    /// A new job entered the system.
    fn on_arrival(&mut self, job: JobView);

    /// A waiting job's requirements changed (`num`/`dur` are the new
    /// effective values). Schedulers must refresh their queued copy.
    fn on_queued_ecc(&mut self, id: JobId, num: u32, dur: Duration) {
        let _ = (id, num, dur);
    }

    /// A running job completed. Most schedulers need no action beyond the
    /// cycle that follows.
    fn on_completion(&mut self, id: JobId) {
        let _ = id;
    }

    /// One scheduling cycle: examine queues and start jobs via
    /// [`SchedContext::start`].
    fn cycle(&mut self, ctx: &mut dyn SchedContext);

    /// Number of jobs still waiting in this scheduler's queues.
    fn waiting_len(&self) -> usize;

    /// Short algorithm name (e.g. `"Delayed-LOS"`).
    fn name(&self) -> &'static str;

    /// Decision-kernel performance counters accumulated so far.
    /// Defaults to all zeros for schedulers without DP kernels.
    fn stats(&self) -> SchedStats {
        SchedStats::default()
    }
}

/// Mutable references schedule too, letting a caller keep ownership of
/// the scheduler (e.g. to read telemetry after the run).
impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn on_arrival(&mut self, job: JobView) {
        (**self).on_arrival(job)
    }

    fn on_queued_ecc(&mut self, id: JobId, num: u32, dur: Duration) {
        (**self).on_queued_ecc(id, num, dur)
    }

    fn on_completion(&mut self, id: JobId) {
        (**self).on_completion(id)
    }

    fn cycle(&mut self, ctx: &mut dyn SchedContext) {
        (**self).cycle(ctx)
    }

    fn waiting_len(&self) -> usize {
        (**self).waiting_len()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn stats(&self) -> SchedStats {
        (**self).stats()
    }
}

/// Boxed schedulers (e.g. from an algorithm registry) schedule too, so
/// the generic engine can drive trait objects.
impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn on_arrival(&mut self, job: JobView) {
        (**self).on_arrival(job)
    }

    fn on_queued_ecc(&mut self, id: JobId, num: u32, dur: Duration) {
        (**self).on_queued_ecc(id, num, dur)
    }

    fn on_completion(&mut self, id: JobId) {
        (**self).on_completion(id)
    }

    fn cycle(&mut self, ctx: &mut dyn SchedContext) {
        (**self).cycle(ctx)
    }

    fn waiting_len(&self) -> usize {
        (**self).waiting_len()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn stats(&self) -> SchedStats {
        (**self).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineError;

    #[test]
    fn start_error_displays() {
        let e = StartError::UnknownJob(JobId(3));
        assert!(e.to_string().contains("job#3"));
        let e: StartError = MachineError::InsufficientCapacity {
            requested: 64,
            free: 32,
        }
        .into();
        assert!(e.to_string().contains("machine error"));
        let e = StartError::NotWaiting(JobId(1));
        assert!(e.to_string().contains("not waiting"));
    }
}
