//! Contiguous (BlueGene-style) space allocation and migration.
//!
//! The paper's related work (§II, Krevat et al. [8]) discusses the
//! BlueGene/L constraint that partitions must be *contiguous*, which
//! introduces fragmentation, and shows migration (on-the-fly
//! de-fragmentation) recovers much of the lost utilization. The paper's
//! own evaluation abstracts this away (any 32-multiple fits), but its
//! future work (§VI) calls out "space continuity — a common requirement
//! in supercomputers like BlueGene/P" as the obstacle to resource
//! elasticity.
//!
//! This module provides that substrate: a [`ContiguousMachine`] that
//! allocates *intervals* of node groups (first-fit), reports external
//! fragmentation, and supports compacting migration. The `repro
//! ablation-contiguity` target replays schedules produced by the
//! count-based engine through this allocator to measure the contiguity
//! tax and how much of it migration recovers.

use crate::job::JobId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A contiguous run of allocation units (node groups) held by one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent {
    /// First unit index (inclusive).
    pub start: u32,
    /// Number of units.
    pub len: u32,
}

impl Extent {
    /// One past the last unit.
    pub fn end(&self) -> u32 {
        self.start + self.len
    }
}

/// Why a contiguous allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContigError {
    /// Not enough total free units anywhere.
    InsufficientCapacity,
    /// Enough free units exist, but no single hole is large enough —
    /// *external fragmentation*.
    Fragmented,
    /// Request is zero or exceeds the machine.
    BadRequest,
}

/// A 1-D machine of `units` node groups requiring contiguous partitions.
#[derive(Debug, Clone, Default)]
pub struct ContiguousMachine {
    units: u32,
    /// Allocations keyed by start unit (sorted by construction).
    allocs: BTreeMap<u32, (JobId, u32)>,
}

impl ContiguousMachine {
    /// A machine with `units` allocation units (BlueGene/P: 320/32 = 10).
    pub fn new(units: u32) -> Self {
        assert!(units > 0, "machine must have at least one unit");
        ContiguousMachine {
            units,
            allocs: BTreeMap::new(),
        }
    }

    /// Total units.
    pub fn units(&self) -> u32 {
        self.units
    }

    /// Units currently allocated.
    pub fn used(&self) -> u32 {
        self.allocs.values().map(|&(_, len)| len).sum()
    }

    /// Units currently free (anywhere).
    pub fn free(&self) -> u32 {
        self.units - self.used()
    }

    /// The free holes, in address order.
    pub fn holes(&self) -> Vec<Extent> {
        let mut holes = Vec::new();
        let mut cursor = 0u32;
        for (&start, &(_, len)) in &self.allocs {
            if start > cursor {
                holes.push(Extent {
                    start: cursor,
                    len: start - cursor,
                });
            }
            cursor = start + len;
        }
        if cursor < self.units {
            holes.push(Extent {
                start: cursor,
                len: self.units - cursor,
            });
        }
        holes
    }

    /// Largest single hole, in units.
    pub fn largest_hole(&self) -> u32 {
        self.holes().iter().map(|h| h.len).max().unwrap_or(0)
    }

    /// External fragmentation in `[0, 1]`: `1 − largest_hole / free`
    /// (0 when free space is one hole or there is no free space).
    pub fn fragmentation(&self) -> f64 {
        let free = self.free();
        if free == 0 {
            return 0.0;
        }
        1.0 - f64::from(self.largest_hole()) / f64::from(free)
    }

    /// First-fit contiguous allocation of `len` units for `job`.
    pub fn allocate(&mut self, job: JobId, len: u32) -> Result<Extent, ContigError> {
        if len == 0 || len > self.units {
            return Err(ContigError::BadRequest);
        }
        if len > self.free() {
            return Err(ContigError::InsufficientCapacity);
        }
        match self.holes().into_iter().find(|h| h.len >= len) {
            Some(hole) => {
                let extent = Extent {
                    start: hole.start,
                    len,
                };
                self.allocs.insert(extent.start, (job, len));
                Ok(extent)
            }
            None => Err(ContigError::Fragmented),
        }
    }

    /// Release `job`'s extent. Returns it if the job was present.
    pub fn release(&mut self, job: JobId) -> Option<Extent> {
        let start = self
            .allocs
            .iter()
            .find(|(_, &(j, _))| j == job)
            .map(|(&s, _)| s)?;
        let (_, len) = self.allocs.remove(&start)?;
        Some(Extent { start, len })
    }

    /// The extent held by `job`, if any.
    pub fn extent_of(&self, job: JobId) -> Option<Extent> {
        self.allocs
            .iter()
            .find(|(_, &(j, _))| j == job)
            .map(|(&start, &(_, len))| Extent { start, len })
    }

    /// Compacting migration (Krevat et al.'s de-fragmentation): slide
    /// every allocation toward address 0, preserving order. Returns the
    /// number of jobs that moved. After compaction the free space is one
    /// contiguous hole.
    pub fn compact(&mut self) -> usize {
        let mut cursor = 0u32;
        let mut moved = 0usize;
        let entries: Vec<(u32, JobId, u32)> = self
            .allocs
            .iter()
            .map(|(&s, &(j, l))| (s, j, l))
            .collect();
        let mut new_allocs = BTreeMap::new();
        for (start, job, len) in entries {
            if start != cursor {
                moved += 1;
            }
            new_allocs.insert(cursor, (job, len));
            cursor += len;
        }
        self.allocs = new_allocs;
        moved
    }

    /// Consistency check: extents in-bounds, non-overlapping, sorted.
    pub fn check_invariants(&self) {
        let mut cursor = 0u32;
        for (&start, &(_, len)) in &self.allocs {
            assert!(start >= cursor, "overlapping extents");
            assert!(start + len <= self.units, "extent out of bounds");
            cursor = start + len;
        }
    }
}

/// Outcome of replaying a start/release sequence through the contiguous
/// allocator (see [`replay`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplayStats {
    /// Start events that found a contiguous hole directly.
    pub direct: u64,
    /// Start events that needed a compaction (migration) first.
    pub after_migration: u64,
    /// Start events impossible even after compaction (would require
    /// delaying the job — the contiguity tax).
    pub blocked: u64,
    /// Total jobs migrated across all compactions.
    pub jobs_migrated: u64,
    /// Peak external fragmentation observed before any compaction.
    pub peak_fragmentation: f64,
}

/// One event of a replay sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayEvent {
    /// A job starts, needing `units` contiguous units.
    Start {
        /// Which job.
        job: JobId,
        /// Size in units.
        units: u32,
    },
    /// A job finishes and releases its extent.
    Finish {
        /// Which job.
        job: JobId,
    },
}

/// Replay a chronological start/finish sequence (as produced by the
/// count-based engine) through a contiguous allocator, with or without
/// migration. Measures how often the count-feasible schedule is
/// contiguity-feasible.
pub fn replay(units: u32, events: &[ReplayEvent], allow_migration: bool) -> ReplayStats {
    let mut machine = ContiguousMachine::new(units);
    let mut stats = ReplayStats::default();
    for ev in events {
        match *ev {
            ReplayEvent::Finish { job } => {
                machine.release(job);
            }
            ReplayEvent::Start { job, units: len } => {
                stats.peak_fragmentation = stats.peak_fragmentation.max(machine.fragmentation());
                match machine.allocate(job, len) {
                    Ok(_) => stats.direct += 1,
                    Err(ContigError::Fragmented) if allow_migration => {
                        stats.jobs_migrated += machine.compact() as u64;
                        match machine.allocate(job, len) {
                            Ok(_) => stats.after_migration += 1,
                            Err(_) => stats.blocked += 1,
                        }
                    }
                    Err(_) => stats.blocked += 1,
                }
            }
        }
        machine.check_invariants();
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jid(i: u64) -> JobId {
        JobId(i)
    }

    #[test]
    fn first_fit_allocates_lowest_hole() {
        let mut m = ContiguousMachine::new(10);
        let a = m.allocate(jid(1), 3).unwrap();
        let b = m.allocate(jid(2), 4).unwrap();
        assert_eq!(a, Extent { start: 0, len: 3 });
        assert_eq!(b, Extent { start: 3, len: 4 });
        assert_eq!(m.free(), 3);
        m.check_invariants();
    }

    #[test]
    fn release_creates_holes() {
        let mut m = ContiguousMachine::new(10);
        m.allocate(jid(1), 3).unwrap();
        m.allocate(jid(2), 4).unwrap();
        m.allocate(jid(3), 3).unwrap();
        m.release(jid(2));
        let holes = m.holes();
        assert_eq!(holes, vec![Extent { start: 3, len: 4 }]);
        // A 4-unit job fits exactly in the hole.
        let e = m.allocate(jid(4), 4).unwrap();
        assert_eq!(e.start, 3);
    }

    #[test]
    fn fragmentation_blocks_despite_capacity() {
        let mut m = ContiguousMachine::new(10);
        m.allocate(jid(1), 3).unwrap(); // [0,3)
        m.allocate(jid(2), 4).unwrap(); // [3,7)
        m.allocate(jid(3), 3).unwrap(); // [7,10)
        m.release(jid(1));
        m.release(jid(3));
        // 6 units free but the largest hole is 3.
        assert_eq!(m.free(), 6);
        assert_eq!(m.largest_hole(), 3);
        assert!(m.fragmentation() > 0.0);
        assert_eq!(m.allocate(jid(4), 5), Err(ContigError::Fragmented));
        assert_eq!(m.allocate(jid(4), 7), Err(ContigError::InsufficientCapacity));
    }

    #[test]
    fn compaction_merges_holes() {
        let mut m = ContiguousMachine::new(10);
        m.allocate(jid(1), 3).unwrap();
        m.allocate(jid(2), 4).unwrap();
        m.allocate(jid(3), 3).unwrap();
        m.release(jid(1));
        m.release(jid(3));
        let moved = m.compact();
        assert_eq!(moved, 1, "job 2 slides to address 0");
        assert_eq!(m.largest_hole(), 6);
        assert_eq!(m.fragmentation(), 0.0);
        assert!(m.allocate(jid(4), 5).is_ok());
        m.check_invariants();
    }

    #[test]
    fn extent_lookup_and_double_release() {
        let mut m = ContiguousMachine::new(10);
        m.allocate(jid(1), 2).unwrap();
        assert_eq!(m.extent_of(jid(1)), Some(Extent { start: 0, len: 2 }));
        assert!(m.release(jid(1)).is_some());
        assert!(m.release(jid(1)).is_none());
        assert_eq!(m.extent_of(jid(1)), None);
    }

    #[test]
    fn bad_requests_rejected() {
        let mut m = ContiguousMachine::new(10);
        assert_eq!(m.allocate(jid(1), 0), Err(ContigError::BadRequest));
        assert_eq!(m.allocate(jid(1), 11), Err(ContigError::BadRequest));
    }

    #[test]
    fn replay_counts_migration_rescues() {
        // Build fragmentation: 1(3) 2(4) 3(3); free 1 and 3; then a
        // 5-unit job arrives.
        let events = vec![
            ReplayEvent::Start { job: jid(1), units: 3 },
            ReplayEvent::Start { job: jid(2), units: 4 },
            ReplayEvent::Start { job: jid(3), units: 3 },
            ReplayEvent::Finish { job: jid(1) },
            ReplayEvent::Finish { job: jid(3) },
            ReplayEvent::Start { job: jid(4), units: 5 },
        ];
        let without = replay(10, &events, false);
        assert_eq!(without.blocked, 1);
        assert_eq!(without.direct, 3);
        let with = replay(10, &events, true);
        assert_eq!(with.blocked, 0);
        assert_eq!(with.after_migration, 1);
        assert!(with.jobs_migrated >= 1);
        assert!(with.peak_fragmentation > 0.0);
    }

    #[test]
    fn replay_of_sequential_schedule_never_blocks() {
        let events: Vec<ReplayEvent> = (1..=20)
            .flat_map(|i| {
                [
                    ReplayEvent::Start { job: jid(i), units: 10 },
                    ReplayEvent::Finish { job: jid(i) },
                ]
            })
            .collect();
        let stats = replay(10, &events, false);
        assert_eq!(stats.blocked, 0);
        assert_eq!(stats.direct, 20);
        assert_eq!(stats.peak_fragmentation, 0.0);
    }
}
