//! The parallel machine model.
//!
//! Models a BlueGene/P-style system (paper §IV-A): `total` processors,
//! allocatable only in integer multiples of an allocation `unit`
//! (32 processors per node group on BlueGene/P). The machine also
//! integrates busy processor-seconds over time, which is the basis of the
//! paper's *mean utilization* metric.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised by machine allocation operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum MachineError {
    /// Requested more processors than currently free.
    InsufficientCapacity { requested: u32, free: u32 },
    /// Request is not a multiple of the allocation unit or is zero.
    BadGranularity { requested: u32, unit: u32 },
    /// Released more than was allocated (internal invariant violation).
    ReleaseUnderflow { released: u32, used: u32 },
    /// Request exceeds the whole machine.
    TooLarge { requested: u32, total: u32 },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MachineError::InsufficientCapacity { requested, free } => {
                write!(f, "requested {requested} processors but only {free} free")
            }
            MachineError::BadGranularity { requested, unit } => {
                write!(f, "request of {requested} processors violates allocation unit {unit}")
            }
            MachineError::ReleaseUnderflow { released, used } => {
                write!(f, "released {released} processors but only {used} in use")
            }
            MachineError::TooLarge { requested, total } => {
                write!(f, "requested {requested} processors on a {total}-processor machine")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// A homogeneous parallel machine with unit-granular space sharing.
///
/// ```
/// use elastisched_sim::{Machine, SimTime};
/// let mut m = Machine::bluegene_p();
/// m.allocate(96, SimTime::ZERO).unwrap();
/// assert_eq!(m.free(), 224);
/// assert!(m.allocate(33, SimTime::ZERO).is_err()); // not a 32-multiple
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    total: u32,
    unit: u32,
    used: u32,
    /// Σ used(t) dt accumulated so far, in processor-seconds.
    busy_area: f64,
    /// Last instant at which `busy_area` was brought up to date.
    last_update: SimTime,
}

impl Machine {
    /// A machine with `total` processors allocatable in multiples of `unit`.
    ///
    /// # Panics
    /// If `unit` is zero or does not divide `total`.
    pub fn new(total: u32, unit: u32) -> Self {
        assert!(unit > 0, "allocation unit must be positive");
        assert!(
            total % unit == 0 && total > 0,
            "machine size must be a positive multiple of the allocation unit"
        );
        Machine {
            total,
            unit,
            used: 0,
            busy_area: 0.0,
            last_update: SimTime::ZERO,
        }
    }

    /// The paper's evaluation machine: a BlueGene/P with M = 320
    /// processors in 32-processor node groups.
    pub fn bluegene_p() -> Self {
        Machine::new(320, 32)
    }

    /// Total processors `M`.
    #[inline]
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Allocation unit (node-group size).
    #[inline]
    pub fn unit(&self) -> u32 {
        self.unit
    }

    /// Processors currently allocated.
    #[inline]
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Free processors `m = M - Σ a_i.num`.
    #[inline]
    pub fn free(&self) -> u32 {
        self.total - self.used
    }

    /// Whether an allocation of `n` processors is valid for this machine
    /// at *some* time (granularity and size), regardless of current load.
    pub fn is_valid_request(&self, n: u32) -> Result<(), MachineError> {
        if n == 0 || n % self.unit != 0 {
            return Err(MachineError::BadGranularity {
                requested: n,
                unit: self.unit,
            });
        }
        if n > self.total {
            return Err(MachineError::TooLarge {
                requested: n,
                total: self.total,
            });
        }
        Ok(())
    }

    /// Whether `n` processors could be allocated right now.
    #[inline]
    pub fn can_fit(&self, n: u32) -> bool {
        self.is_valid_request(n).is_ok() && n <= self.free()
    }

    /// Bring the busy-area integral up to `now`. Must be called with
    /// monotonically non-decreasing times.
    pub fn advance_to(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "machine clock moved backwards");
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        self.busy_area += self.used as f64 * dt;
        self.last_update = now;
    }

    /// Allocate `n` processors at `now`.
    pub fn allocate(&mut self, n: u32, now: SimTime) -> Result<(), MachineError> {
        self.is_valid_request(n)?;
        if n > self.free() {
            return Err(MachineError::InsufficientCapacity {
                requested: n,
                free: self.free(),
            });
        }
        self.advance_to(now);
        self.used += n;
        Ok(())
    }

    /// Release `n` processors at `now`.
    pub fn release(&mut self, n: u32, now: SimTime) -> Result<(), MachineError> {
        if n > self.used {
            return Err(MachineError::ReleaseUnderflow {
                released: n,
                used: self.used,
            });
        }
        self.advance_to(now);
        self.used -= n;
        Ok(())
    }

    /// Busy processor-seconds accumulated up to the last `advance_to`.
    #[inline]
    pub fn busy_area(&self) -> f64 {
        self.busy_area
    }

    /// Mean utilization over `[0, horizon]`:
    /// busy processor-seconds divided by `M * horizon`.
    pub fn mean_utilization(&self, horizon: SimTime) -> f64 {
        let h = horizon.as_secs() as f64;
        if h <= 0.0 {
            return 0.0;
        }
        self.busy_area / (self.total as f64 * h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn bluegene_p_dimensions() {
        let m = Machine::bluegene_p();
        assert_eq!(m.total(), 320);
        assert_eq!(m.unit(), 32);
        assert_eq!(m.free(), 320);
    }

    #[test]
    fn allocate_release_roundtrip() {
        let mut m = Machine::new(320, 32);
        m.allocate(96, t(0)).unwrap();
        assert_eq!(m.used(), 96);
        assert_eq!(m.free(), 224);
        m.release(96, t(10)).unwrap();
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn rejects_bad_granularity() {
        let mut m = Machine::new(320, 32);
        assert!(matches!(
            m.allocate(33, t(0)),
            Err(MachineError::BadGranularity { .. })
        ));
        assert!(matches!(
            m.allocate(0, t(0)),
            Err(MachineError::BadGranularity { .. })
        ));
    }

    #[test]
    fn rejects_oversubscription() {
        let mut m = Machine::new(320, 32);
        m.allocate(320, t(0)).unwrap();
        assert!(matches!(
            m.allocate(32, t(1)),
            Err(MachineError::InsufficientCapacity { .. })
        ));
        assert!(matches!(
            m.allocate(352, t(1)),
            Err(MachineError::TooLarge { .. })
        ));
    }

    #[test]
    fn release_underflow_detected() {
        let mut m = Machine::new(320, 32);
        m.allocate(32, t(0)).unwrap();
        assert!(matches!(
            m.release(64, t(1)),
            Err(MachineError::ReleaseUnderflow { .. })
        ));
    }

    #[test]
    fn busy_area_integrates_usage() {
        let mut m = Machine::new(100, 10);
        // NB: unit 10 machine for round numbers.
        m.allocate(50, t(0)).unwrap();
        m.advance_to(t(10)); // 50 procs * 10 s = 500
        m.allocate(30, t(10)).unwrap();
        m.advance_to(t(20)); // + 80 * 10 = 800
        m.release(80, t(20)).unwrap();
        m.advance_to(t(30)); // + 0
        assert_eq!(m.busy_area(), 1300.0);
        assert!((m.mean_utilization(t(30)) - 1300.0 / 3000.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_zero_horizon_is_zero() {
        let m = Machine::new(100, 10);
        assert_eq!(m.mean_utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic]
    fn machine_requires_unit_dividing_total() {
        let _ = Machine::new(100, 32);
    }

    #[test]
    fn can_fit_respects_granularity_and_load() {
        let mut m = Machine::new(320, 32);
        assert!(m.can_fit(320));
        assert!(!m.can_fit(321));
        assert!(!m.can_fit(16));
        m.allocate(288, t(0)).unwrap();
        assert!(m.can_fit(32));
        assert!(!m.can_fit(64));
    }
}
