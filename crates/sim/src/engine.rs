//! The discrete-event simulation engine.
//!
//! Plays a workload (job submissions plus Elastic Control Commands)
//! against a [`Scheduler`] on a [`Machine`], producing per-job outcomes
//! and the machine utilization integral. This is the Rust substitute for
//! the paper's GridSim + ALEA stack (§IV-A, §IV-B): an event-ordered
//! virtual clock, job arrival/completion events, an ECC processor, and a
//! scheduling cycle fired once per distinct event timestamp.

use crate::attribution::{AttrNotes, AttrState, AttributionProfile, JobAttr, PendingCause};
use crate::ecc::{EccKind, EccPolicy, EccSpec};
use crate::event::{Event, EventQueue};
use crate::job::{JobId, JobOutcome, JobRecord, JobSpec, JobState};
use crate::machine::Machine;
use crate::reconfig::{ReconfigCost, ReconfigStats};
use crate::running::{RunningJob, RunningSet};
use crate::sampler::{RunTimeline, TimelineConfig, TimelineSample, TimelineSampler};
use crate::sched_api::{JobView, SchedContext, SchedStats, Scheduler, StartError};
use crate::source::{JobSource, SourceItem};
use crate::time::{Duration, SimTime};
use elastisched_trace::{trace_event, EccTag, PostmortemSnapshot, TraceEvent, TraceSink};
use std::collections::HashMap;

use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// The trace-facing tag for an engine-level ECC kind.
fn ecc_tag(kind: EccKind) -> EccTag {
    match kind {
        EccKind::ExtendTime => EccTag::ExtendTime,
        EccKind::ReduceTime => EccTag::ReduceTime,
        EccKind::ExtendProcs => EccTag::ExtendProcs,
        EccKind::ReduceProcs => EccTag::ReduceProcs,
    }
}

/// Deterministic multiplicative hasher for [`JobId`] keys.
///
/// The id → record map sits on the per-event hot path (arrivals, starts,
/// completions all go through it); SipHash costs more than the rest of
/// the lookup for a u64 key. A Fibonacci multiply spreads sequential ids
/// across the table and is seed-free, so runs are reproducible.
#[derive(Default)]
struct JobIdHasher(u64);

impl Hasher for JobIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 key fragments (none in practice).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let h = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // Fold the strong high bits into the low bits the table indexes by.
        self.0 = h ^ (h >> 32);
    }
}

type JobIdMap = HashMap<JobId, usize, BuildHasherDefault<JobIdHasher>>;

/// Optional per-completion outcome sink. `Some` on the streaming-folded
/// path, where outcomes are consumed instead of retained; `None`
/// everywhere else.
type OutcomeFold<'a> = Option<&'a mut dyn FnMut(&JobOutcome)>;

/// Simulation-level failures.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names are self-describing
pub enum SimError {
    /// Two jobs share an id.
    DuplicateJobId(JobId),
    /// A job requests more processors than the machine has, or violates
    /// the allocation granularity — it could never be scheduled.
    ImpossibleJob { id: JobId, num: u32 },
    /// The event queue drained but jobs are still waiting: the scheduler
    /// starved them.
    Starvation { waiting: usize },
    /// A scheduler start request failed in a way that indicates an engine
    /// or scheduler bug (oversubscription attempts are bugs, not events).
    Start(String),
    /// A streamed [`JobSource`] yielded an item whose time precedes the
    /// virtual clock — the stream violated its non-decreasing-time
    /// contract (see [`crate::source`]).
    UnorderedSource { at: SimTime, clock: SimTime },
    /// An always-on audit check (the `audit` cargo feature) caught an
    /// engine-state inconsistency: capacity conservation, clock
    /// monotonicity, ECC/running-set accounting, reclamation-slab
    /// consistency, bucket-FIFO order, or wait-attribution
    /// conservation. Never produced without the feature; when a flight
    /// recorder is armed the violation also dumps a postmortem (see
    /// [`Engine::enable_flight_recorder`]).
    AuditViolation {
        /// Which check family tripped: `capacity`, `clock`, `ecc`,
        /// `slab`, `fifo`, or `attribution`.
        check: &'static str,
        /// Human-readable specifics.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DuplicateJobId(id) => write!(f, "duplicate job id {id}"),
            SimError::ImpossibleJob { id, num } => {
                write!(f, "{id} requests {num} processors and can never run")
            }
            SimError::Starvation { waiting } => {
                write!(f, "simulation ended with {waiting} jobs starved in queue")
            }
            SimError::Start(msg) => write!(f, "start failure: {msg}"),
            SimError::UnorderedSource { at, clock } => write!(
                f,
                "job source yielded an item at {}s behind the clock at {}s",
                at.as_secs(),
                clock.as_secs()
            ),
            SimError::AuditViolation { check, detail } => {
                write!(f, "audit violation [{check}]: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Counters describing what the ECC processor did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EccStats {
    /// Commands applied to running jobs.
    pub applied_running: u64,
    /// Commands applied to queued (waiting or not-yet-arrived) jobs.
    pub applied_queued: u64,
    /// Commands dropped by policy (elasticity disabled or per-job cap).
    pub dropped_policy: u64,
    /// Commands that arrived after their job completed, or that could not
    /// be honoured (e.g. EP with no spare capacity).
    pub dropped_stale: u64,
}

impl EccStats {
    /// Total commands applied.
    pub fn applied(&self) -> u64 {
        self.applied_running + self.applied_queued
    }
}

/// Event-loop performance counters: how much traffic the engine moved
/// and how much work same-instant cycle coalescing saved. Purely
/// diagnostic — none of these affect simulation semantics, and
/// `RunMetrics` equality ignores them.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize,
)]
pub struct EngineStats {
    /// Events dispatched over the whole run.
    pub events: u64,
    /// Scheduler cycles fired (one per distinct event timestamp).
    pub cycles: u64,
    /// Events that shared a cycle with an earlier event at the same
    /// instant — i.e. scheduler invocations saved versus a naive
    /// one-cycle-per-event loop.
    pub events_coalesced: u64,
    /// Total event-queue operations (pushes + pops).
    pub queue_ops: u64,
    /// Largest number of simultaneously pending events observed.
    pub peak_queue_len: u64,
    /// Wall-clock nanoseconds spent inside [`Engine::run`].
    pub engine_nanos: u64,
    /// High-water mark of the job-record slab. On the materialized path
    /// this is the trace length (every job is loaded up front); on the
    /// streaming paths completed slots are recycled, so it is the peak
    /// number of simultaneously *live* (admitted, not yet completed)
    /// jobs — the quantity a soak run's memory is proportional to.
    #[serde(default)]
    pub peak_live_jobs: u64,
    /// High-water mark of the waiting-jobs snapshot buffer, dead views
    /// included. Bounded by ~2× the peak waiting count regardless of
    /// whether the policy ever borrows the snapshot: the start-time
    /// compaction keeps dead views from outnumbering live ones, so a
    /// value near the trace length flags a compaction regression (on a
    /// streamed soak this buffer would otherwise grow with the trace).
    #[serde(default)]
    pub peak_wait_views: u64,
    /// Completed jobs whose record-slab slot, id-map entry, and
    /// wait-view were recycled (streaming runs only; always zero on the
    /// materialized path, which keeps every record for inspection).
    #[serde(default)]
    pub jobs_reclaimed: u64,
}

/// A periodic snapshot of system state (sampling must be enabled on the
/// engine via [`Engine::enable_sampling`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Free processors after the scheduling cycle.
    pub free: u32,
    /// Jobs waiting in the scheduler's queues.
    pub waiting: usize,
    /// Jobs running.
    pub running: usize,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Scheduler name the run used.
    pub scheduler: &'static str,
    /// One outcome per completed job, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Machine size the run used.
    pub machine_total: u32,
    /// Busy processor-seconds integrated over the whole run.
    pub busy_area: f64,
    /// First job arrival.
    pub first_arrival: SimTime,
    /// Last job arrival.
    pub last_arrival: SimTime,
    /// Last job completion (the makespan horizon).
    pub makespan: SimTime,
    /// ECC processor counters.
    pub ecc: EccStats,
    /// Scheduler-initiated malleable-reconfiguration counters.
    pub reconfig: ReconfigStats,
    /// Periodic state samples (empty unless sampling was enabled).
    pub samples: Vec<StateSample>,
    /// Decision-kernel counters reported by the scheduler.
    pub sched_stats: SchedStats,
    /// Event-loop counters (traffic, coalescing, wall-clock).
    pub engine: EngineStats,
    /// The trace recorded during the run (`None` unless tracing was
    /// enabled via [`Engine::enable_tracing`]).
    pub trace: Option<Box<TraceSink>>,
    /// The sampled virtual-time timeline (empty unless sampling was
    /// enabled via [`Engine::enable_timeline`]).
    pub timeline: RunTimeline,
    /// Per-run wait-attribution roll-up (empty unless attribution was
    /// enabled via [`Engine::enable_attribution`]).
    pub attribution: AttributionProfile,
}

impl SimResult {
    /// Mean machine utilization over `[0, makespan]` — the paper's
    /// utilization metric.
    pub fn mean_utilization(&self) -> f64 {
        let h = self.makespan.as_secs() as f64;
        if h <= 0.0 {
            return 0.0;
        }
        self.busy_area / (self.machine_total as f64 * h)
    }
}

fn round_up_to_unit(n: u32, unit: u32) -> u32 {
    n.div_ceil(unit) * unit
}

fn round_down_to_unit(n: u32, unit: u32) -> u32 {
    (n / unit) * unit
}

/// Work-conserving finish time after resizing a running job from
/// `old_alloc` to `new_alloc` processors at `now`: the remaining work
/// `remaining × old` is redistributed over the new width (rounding
/// against the job, i.e. up), so shrinking stretches the tail and
/// growing compresses it. The reconfiguration cost is charged on top by
/// the caller.
fn rescaled_finish(now: SimTime, finish: SimTime, old_alloc: u32, new_alloc: u32) -> SimTime {
    let remaining = (finish - now).as_secs();
    let scaled = (remaining * u64::from(old_alloc)).div_ceil(u64::from(new_alloc.max(1)));
    now + Duration::from_secs(scaled)
}

struct EngineState {
    now: SimTime,
    machine: Machine,
    running: RunningSet,
    records: Vec<JobRecord>,
    id_map: JobIdMap,
    queue: EventQueue,
    outcomes: Vec<JobOutcome>,
    ecc_policy: EccPolicy,
    ecc_stats: EccStats,
    /// Cost model applied to scheduler-initiated grows/shrinks (see
    /// [`crate::reconfig`]); the counters track what was applied.
    reconfig_cost: ReconfigCost,
    reconfig: ReconfigStats,
    makespan: SimTime,
    /// Incremental arrival-ordered snapshot of waiting jobs, lent to
    /// schedulers via [`SchedContext::waiting_jobs`] as
    /// `wait_views[wait_head..]`. Arrivals append; a start of the snapshot
    /// head just advances the cursor (O(1), the common FIFO case); a start
    /// from the middle bumps `wait_stale` and the next borrow compacts in
    /// one pass. Queued ECCs edit their view in place, so a clean snapshot
    /// is never rebuilt.
    wait_views: Vec<JobView>,
    /// Record-slab slot of each view in `wait_views` (same indexing,
    /// mutated in lockstep). Compaction reads liveness straight from the
    /// record — no id hashing — and writes the surviving views' new
    /// positions back into their records (`JobRecord::wait_pos`).
    wait_recs: Vec<u32>,
    wait_head: usize,
    wait_stale: usize,
    /// High-water mark of `wait_views.len()` (see
    /// [`EngineStats::peak_wait_views`]).
    peak_wait_views: usize,
    /// Free record-slab slots (streaming runs only). A completed job's
    /// slot is recycled for a later arrival, so the slab tracks peak
    /// *live* jobs, not trace length.
    free_slots: Vec<usize>,
    /// Reclaim job state at completion (set by the streaming run paths;
    /// the materialized path keeps every record for post-run inspection).
    reclaim: bool,
    /// Trace sink, present only when tracing was enabled for this run.
    /// Boxed so the disabled path carries one pointer, not the sink's
    /// inline histogram. `None` means every `trace_event!` call site in
    /// the engine and the schedulers is a single always-false branch.
    trace: Option<Box<TraceSink>>,
    /// Wait-attribution state, present only when enabled (see
    /// [`Engine::enable_attribution`]); same one-branch discipline as
    /// the trace sink.
    attr: Option<Box<AttrState>>,
    /// Events still in the queue because [`Engine::load`] pre-queued the
    /// whole trace (arrivals + ECCs not yet dispatched). Subtracted from
    /// the sampled `event_queue_len` so the telemetry timeline reports
    /// only *reactive* events (completions, wakeups) and the streamed
    /// and materialized paths sample identically. Always zero on the
    /// streaming paths, which admit source items without queueing them.
    preloaded_pending: u64,
}

impl EngineState {
    fn record(&self, id: JobId) -> Option<&JobRecord> {
        self.id_map.get(&id).map(|&i| &self.records[i])
    }

    fn record_mut(&mut self, id: JobId) -> Option<&mut JobRecord> {
        match self.id_map.get(&id) {
            Some(&i) => Some(&mut self.records[i]),
            None => None,
        }
    }

    /// Bring the waiting-jobs snapshot back to exactness. Head starts
    /// were already absorbed by the cursor; only an out-of-order start
    /// (`wait_stale`) forces a compaction pass, and a long dead prefix is
    /// reclaimed so the buffer does not grow without bound.
    fn sync_wait_views(&mut self) {
        if self.wait_stale > 0 {
            // One in-place pass: each view carries its record slot, so
            // liveness is a state load (no id hashing), and every
            // surviving view writes its new position back into its
            // record for the O(1) queued-ECC edit. The id check guards
            // the streaming case where a dead view's slot was already
            // recycled by a later arrival.
            let mut w = 0;
            for r in 0..self.wait_views.len() {
                let slot = self.wait_recs[r] as usize;
                let rec = &mut self.records[slot];
                if rec.state == JobState::Waiting && rec.spec.id == self.wait_views[r].id {
                    rec.wait_pos = w as u32;
                    self.wait_views[w] = self.wait_views[r];
                    self.wait_recs[w] = slot as u32;
                    w += 1;
                }
            }
            self.wait_views.truncate(w);
            self.wait_recs.truncate(w);
            self.wait_head = 0;
            self.wait_stale = 0;
        } else if self.wait_head > 32 && self.wait_head * 2 > self.wait_views.len() {
            let head = self.wait_head;
            // With no stale entries every view past the cursor is live;
            // they all shift left by `head`, and so do their recorded
            // positions.
            for r in head..self.wait_views.len() {
                self.records[self.wait_recs[r] as usize].wait_pos -= head as u32;
            }
            self.wait_views.drain(..head);
            self.wait_recs.drain(..head);
            self.wait_head = 0;
        }
    }
}

impl SchedContext for EngineState {
    fn now(&self) -> SimTime {
        self.now
    }

    fn total(&self) -> u32 {
        self.machine.total()
    }

    fn free(&self) -> u32 {
        self.machine.free()
    }

    fn unit(&self) -> u32 {
        self.machine.unit()
    }

    fn running(&self) -> &RunningSet {
        &self.running
    }

    fn start(&mut self, id: JobId) -> Result<(), StartError> {
        let now = self.now;
        let &idx = self.id_map.get(&id).ok_or(StartError::UnknownJob(id))?;
        let rec = &self.records[idx];
        if rec.state != JobState::Waiting {
            return Err(StartError::NotWaiting(id));
        }
        // Final attribution charge: the job stops waiting this instant,
        // so the interval since the last cycle goes to its pending
        // cause and the buckets telescope to exactly the job's wait.
        if let Some(attr) = self.attr.as_deref_mut() {
            attr.jobs[idx].charge_until(now, rec.spec.eligible_at());
        }
        let alloc = rec.alloc;
        let kill_by = now + rec.est_dur;
        let completes = now + rec.actual_dur.min(rec.est_dur);
        let epoch = rec.completion_epoch;
        // Allocate before mutating state so a machine refusal leaves the
        // job safely in the queue.
        self.machine.allocate(alloc, now)?;
        self.records[idx].state = JobState::Running {
            started: now,
            finish: kill_by,
        };
        self.running.insert(RunningJob {
            id,
            num: alloc,
            finish: kill_by,
        });
        self.queue.push(completes, Event::Completion { job: id, epoch });
        // Snapshot upkeep: starting the snapshot head (the FIFO-discipline
        // common case) is a cursor bump; anything else defers to a
        // compaction at the next borrow.
        if self.wait_views.get(self.wait_head).is_some_and(|v| v.id == id) {
            self.wait_head += 1;
        } else {
            self.wait_stale += 1;
        }
        // A policy that drives starts from its own queue may never borrow
        // the snapshot, so the borrow-time compaction alone would let
        // dead views pile up for the whole run — O(trace) memory on a
        // streamed soak. Compact here too once dead entries outnumber
        // live ones: each pass at least halves the buffer, so the cost
        // stays amortized O(1) per start. The floor is high enough that
        // a bench-scale run (hundreds of starts between borrows) never
        // pays for a pass it does not need — the buffer is only ever
        // large on archive-scale runs.
        let dead = self.wait_head + self.wait_stale;
        if dead > 1024 && dead * 2 > self.wait_views.len() {
            self.sync_wait_views();
        }
        trace_event!(
            self.trace.as_deref_mut(),
            TraceEvent::Start {
                job: id.0,
                at: now.as_secs(),
                num: alloc,
            }
        );
        Ok(())
    }

    fn waiting_jobs(&mut self) -> &[JobView] {
        self.sync_wait_views();
        &self.wait_views[self.wait_head..]
    }

    fn waiting_dur(&self, id: JobId) -> Option<Duration> {
        let rec = self.record(id)?;
        if rec.state == JobState::Waiting {
            Some(rec.est_dur)
        } else {
            None
        }
    }

    fn request_wakeup(&mut self, at: SimTime) {
        self.queue.push(at.max(self.now), Event::Wakeup);
    }

    fn trace(&mut self) -> Option<&mut TraceSink> {
        self.trace.as_deref_mut()
    }

    fn attribution(&mut self) -> Option<&mut AttrNotes> {
        self.attr.as_deref_mut().map(|a| &mut a.notes)
    }

    fn malleable_bounds(&self, id: JobId) -> Option<(u32, u32)> {
        let rec = self.record(id)?;
        if !rec.is_running() || !rec.spec.is_malleable() {
            return None;
        }
        let unit = self.machine.unit().max(1);
        let (min, max) = rec.spec.proc_range();
        let floor = round_up_to_unit(min.max(1), unit);
        let ceiling = round_down_to_unit(max, unit)
            .min(self.machine.total())
            .max(floor);
        Some((floor, ceiling))
    }

    fn shrink_running(&mut self, id: JobId, delta: u32) -> u32 {
        let Some((floor, _)) = self.malleable_bounds(id) else {
            return 0;
        };
        let now = self.now;
        let unit = self.machine.unit().max(1);
        let rec = self.record(id).expect("bounds imply a live record");
        let (started, finish) = match rec.state {
            JobState::Running { started, finish } => (started, finish),
            _ => return 0,
        };
        let shrink = round_down_to_unit(delta, unit).min(rec.alloc.saturating_sub(floor));
        if shrink == 0 {
            return 0;
        }
        let cost = self.reconfig_cost.charge(shrink, unit);
        let new_finish = rescaled_finish(now, finish, rec.alloc, rec.alloc - shrink) + cost;
        let rec = self.record_mut(id).expect("checked above");
        rec.alloc -= shrink;
        rec.mal_gain = rec.mal_gain.saturating_sub(shrink);
        rec.est_dur = new_finish - started;
        rec.actual_dur = rec.est_dur;
        rec.completion_epoch += 1;
        let epoch = rec.completion_epoch;
        let alloc = rec.alloc;
        rec.state = JobState::Running {
            started,
            finish: new_finish,
        };
        self.running.update_num(id, alloc);
        self.running.update_finish(id, new_finish);
        self.queue
            .push(new_finish, Event::Completion { job: id, epoch });
        self.machine
            .release(shrink, now)
            .expect("shrink releases processors the job holds");
        self.reconfig.shrinks += 1;
        self.reconfig.procs_reclaimed += u64::from(shrink);
        self.reconfig.cost_secs += cost.as_secs();
        trace_event!(
            self.trace.as_deref_mut(),
            TraceEvent::Reconfig {
                job: id.0,
                at: now.as_secs(),
                grow: false,
                delta: shrink,
                num: alloc,
                cost: cost.as_secs(),
            }
        );
        shrink
    }

    fn grow_running(&mut self, id: JobId, delta: u32) -> u32 {
        let Some((_, ceiling)) = self.malleable_bounds(id) else {
            return 0;
        };
        let now = self.now;
        let unit = self.machine.unit().max(1);
        let rec = self.record(id).expect("bounds imply a live record");
        let (started, finish) = match rec.state {
            JobState::Running { started, finish } => (started, finish),
            _ => return 0,
        };
        let grow = round_down_to_unit(delta, unit)
            .min(ceiling.saturating_sub(rec.alloc))
            .min(round_down_to_unit(self.machine.free(), unit));
        if grow == 0 || !self.machine.can_fit(grow) {
            return 0;
        }
        let cost = self.reconfig_cost.charge(grow, unit);
        let new_finish = rescaled_finish(now, finish, rec.alloc, rec.alloc + grow) + cost;
        self.machine
            .allocate(grow, now)
            .expect("fit was checked above");
        let rec = self.record_mut(id).expect("checked above");
        rec.alloc += grow;
        rec.mal_gain += grow;
        rec.est_dur = new_finish - started;
        rec.actual_dur = rec.est_dur;
        rec.completion_epoch += 1;
        let epoch = rec.completion_epoch;
        let alloc = rec.alloc;
        rec.state = JobState::Running {
            started,
            finish: new_finish,
        };
        self.running.update_num(id, alloc);
        self.running.update_finish(id, new_finish);
        self.queue
            .push(new_finish, Event::Completion { job: id, epoch });
        self.reconfig.grows += 1;
        self.reconfig.procs_granted += u64::from(grow);
        self.reconfig.cost_secs += cost.as_secs();
        trace_event!(
            self.trace.as_deref_mut(),
            TraceEvent::Reconfig {
                job: id.0,
                at: now.as_secs(),
                grow: true,
                delta: grow,
                num: alloc,
                cost: cost.as_secs(),
            }
        );
        grow
    }

    fn reconfig_charge(&self, delta: u32) -> Duration {
        self.reconfig_cost.charge(delta, self.machine.unit())
    }
}

/// Ring capacity of the flight recorder's implicit trace sink: enough
/// recent transitions to reconstruct the window around a failure
/// without the full-trace memory cost.
const FLIGHT_RING_CAPACITY: usize = 512;

/// The armed black-box recorder: where to dump, and whether it already
/// fired (one postmortem per run, first failure wins).
struct FlightRecorder {
    path: std::path::PathBuf,
    dumped: bool,
}

/// The simulation driver, generic over the scheduling policy.
pub struct Engine<S: Scheduler> {
    scheduler: S,
    state: EngineState,
    first_arrival: SimTime,
    last_arrival: SimTime,
    /// Jobs completed so far — `outcomes.len()` when outcomes are
    /// retained, but still counted when a streaming run folds them away.
    completed: u64,
    sample_every: Option<Duration>,
    last_sample: Option<SimTime>,
    samples: Vec<StateSample>,
    /// Virtual-time telemetry sampler, `None` (one branch per cycle)
    /// unless enabled. Boxed so the disabled engine carries a pointer,
    /// not the sample buffer.
    timeline: Option<Box<TimelineSampler>>,
    /// Armed flight recorder, `None` unless enabled.
    postmortem: Option<FlightRecorder>,
    /// Completed jobs whose state was recycled (streaming paths).
    reclaimed: u64,
    /// Previous cycle's timestamp, for the audit layer's clock check.
    #[cfg(feature = "audit")]
    last_cycle_at: SimTime,
}

impl<S: Scheduler> Engine<S> {
    /// Build an engine over `machine` with the given ECC policy.
    pub fn new(machine: Machine, scheduler: S, ecc_policy: EccPolicy) -> Self {
        Engine {
            scheduler,
            state: EngineState {
                now: SimTime::ZERO,
                machine,
                running: RunningSet::new(),
                records: Vec::new(),
                id_map: JobIdMap::default(),
                queue: EventQueue::new(),
                outcomes: Vec::new(),
                ecc_policy,
                ecc_stats: EccStats::default(),
                reconfig_cost: ReconfigCost::default(),
                reconfig: ReconfigStats::default(),
                makespan: SimTime::ZERO,
                wait_views: Vec::new(),
                wait_recs: Vec::new(),
                wait_head: 0,
                wait_stale: 0,
                peak_wait_views: 0,
                free_slots: Vec::new(),
                reclaim: false,
                trace: None,
                attr: None,
                preloaded_pending: 0,
            },
            first_arrival: SimTime::MAX,
            last_arrival: SimTime::ZERO,
            completed: 0,
            sample_every: None,
            last_sample: None,
            samples: Vec::new(),
            timeline: None,
            postmortem: None,
            reclaimed: 0,
            #[cfg(feature = "audit")]
            last_cycle_at: SimTime::ZERO,
        }
    }

    /// Record a [`StateSample`] after the scheduling cycle of the first
    /// event timestamp in every `interval`-long window.
    pub fn enable_sampling(&mut self, interval: Duration) {
        assert!(interval > Duration::ZERO, "sampling interval must be positive");
        self.sample_every = Some(interval);
    }

    /// Attach a trace sink: the run records lifecycle, decision, and
    /// cycle events into it and hands it back in [`SimResult::trace`].
    /// Without this call tracing costs one branch per call site.
    pub fn enable_tracing(&mut self, sink: TraceSink) {
        self.state.trace = Some(Box::new(sink));
    }

    /// Record a [`RunTimeline`]: one [`TimelineSample`] per virtual-time
    /// stride at cycle boundaries, decimating (drop every other point,
    /// double the stride) whenever the point budget fills — so any run,
    /// 500 jobs or 10⁶, ends with at most `cfg.budget` samples. Works
    /// identically on [`Engine::run`] and the streaming paths. Without
    /// this call the sampler costs one branch per scheduling cycle.
    pub fn enable_timeline(&mut self, cfg: TimelineConfig) {
        self.timeline = Some(Box::new(TimelineSampler::new(cfg)));
    }

    /// Classify every second of every job's queue wait into blocking
    /// causes (see [`crate::attribution`] for the taxonomy): each cycle
    /// charges the elapsed interval to the cause decided at the
    /// previous cycle, so the per-job buckets telescope to exactly the
    /// job's wait. The per-job [`crate::WaitAttribution`] rides on its
    /// [`JobOutcome`] and the per-run [`AttributionProfile`] on
    /// [`SimResult::attribution`]. Works identically on [`Engine::run`]
    /// and the streaming paths — per-job state is recycled with the
    /// record slot and the profile folds O(1) at completion, so soaks
    /// carry it in bounded memory. Without this call attribution costs
    /// one branch per scheduling cycle.
    pub fn enable_attribution(&mut self) {
        self.state.attr = Some(Box::default());
    }

    /// Set the cost model charged to scheduler-initiated grows and
    /// shrinks of running malleable jobs (see [`crate::reconfig`]).
    /// Defaults to [`ReconfigCost::default`]; [`ReconfigCost::FREE`]
    /// makes resizes free for upper-bound studies.
    pub fn set_reconfig_cost(&mut self, cost: ReconfigCost) {
        self.state.reconfig_cost = cost;
    }

    /// Arm the black-box flight recorder: if the run panics or aborts
    /// with an error (audit violations included), the recent-transition
    /// ring plus an engine-state snapshot is dumped as postmortem JSONL
    /// to `path` before the failure propagates (`escli explain
    /// --postmortem` replays it). When tracing is not otherwise enabled
    /// this installs a small fixed ring ([`FLIGHT_RING_CAPACITY`]
    /// events, timing off) that retains only the most recent
    /// transitions — always-cheap, per the ring-sink discipline — and
    /// hands it back in [`SimResult::trace`] like any other sink.
    pub fn enable_flight_recorder(&mut self, path: impl Into<std::path::PathBuf>) {
        if self.state.trace.is_none() {
            let mut sink = TraceSink::with_capacity(FLIGHT_RING_CAPACITY);
            sink.disable_timing();
            self.state.trace = Some(Box::new(sink));
        }
        self.postmortem = Some(FlightRecorder {
            path: path.into(),
            dumped: false,
        });
    }

    /// Load jobs and ECCs, validating feasibility.
    pub fn load(&mut self, jobs: &[JobSpec], eccs: &[EccSpec]) -> Result<(), SimError> {
        self.state.records.reserve(jobs.len());
        self.state.id_map.reserve(jobs.len());
        self.state.outcomes.reserve(jobs.len());
        // Worst case every job waits at once; one up-front reservation
        // spares the snapshot repeated mid-run regrowth.
        self.state.wait_views.reserve(jobs.len());
        self.state.wait_recs.reserve(jobs.len());
        // Every spec becomes one pending event; sizing the calendar's
        // slab once spares a dozen push-by-push regrowths.
        self.state.queue.reserve(jobs.len() + eccs.len());
        for spec in jobs {
            self.state
                .machine
                .is_valid_request(spec.num)
                .map_err(|_| SimError::ImpossibleJob {
                    id: spec.id,
                    num: spec.num,
                })?;
            let idx = self.state.records.len();
            if self.state.id_map.insert(spec.id, idx).is_some() {
                return Err(SimError::DuplicateJobId(spec.id));
            }
            self.state.records.push(JobRecord::new(*spec));
            self.state.queue.push(spec.submit, Event::Arrival(spec.id));
            self.state.preloaded_pending += 1;
            self.first_arrival = self.first_arrival.min(spec.submit);
            self.last_arrival = self.last_arrival.max(spec.submit);
        }
        for ecc in eccs {
            self.state.queue.push(ecc.issue_at, Event::Ecc(*ecc));
            self.state.preloaded_pending += 1;
        }
        Ok(())
    }

    /// Run to completion and return the collected result.
    pub fn run(mut self) -> Result<SimResult, SimError> {
        let wall = std::time::Instant::now();
        let mut engine_stats = EngineStats::default();
        // Trace preamble: machine shape plus one Submit per loaded job,
        // so a trace is self-describing even before any event fires.
        if let Some(tr) = self.state.trace.as_deref_mut() {
            tr.record(TraceEvent::RunMeta {
                total: self.state.machine.total(),
                unit: self.state.machine.unit(),
                scheduler: self.scheduler.name().to_string(),
            });
            for rec in &self.state.records {
                tr.record(TraceEvent::Submit {
                    job: rec.spec.id.0,
                    at: rec.spec.submit.as_secs(),
                    num: rec.spec.num,
                    dur: rec.spec.dur.as_secs(),
                    dedicated: rec.spec.class.requested_start().is_some(),
                });
            }
        }
        self.guarded(|eng| eng.run_loop(&mut engine_stats))?;
        self.finish(engine_stats, wall)
    }

    /// The materialized event loop, separated from [`Engine::run`] so the
    /// flight recorder can wrap it in a panic guard without consuming the
    /// engine (the dump needs the post-unwind state).
    fn run_loop(&mut self, engine_stats: &mut EngineStats) -> Result<(), SimError> {
        // Reused across instants: one batch drain per cycle, no per-event
        // peeking and no allocation once it reaches the burst high-water
        // mark.
        let mut batch: Vec<Event> = Vec::new();
        while let Some(t) = self.state.queue.drain_next_instant(&mut batch) {
            debug_assert!(t >= self.state.now, "event time went backwards");
            self.state.now = t;
            self.state.machine.advance_to(t);
            // Dispatch every event at this instant, then run one cycle.
            // Dispatching may push *more* events at this same instant
            // (e.g. a reduce-time ECC completing a job right now), which
            // the old heap ordered after everything already pending at
            // `t` — re-draining after the batch preserves that order.
            let mut dispatched = 0u64;
            loop {
                for ev in batch.drain(..) {
                    dispatched += 1;
                    self.dispatch(ev, &mut None)?;
                }
                if self.state.queue.peek_time() != Some(t) {
                    break;
                }
                self.state.queue.drain_next_instant(&mut batch);
            }
            engine_stats.events += dispatched;
            engine_stats.events_coalesced += dispatched - 1;
            engine_stats.cycles += 1;
            self.end_cycle(t, dispatched)?;
        }
        Ok(())
    }

    /// Run `body` under the flight recorder's failure guard when one is
    /// armed: a panic or an error inside the loop dumps the postmortem
    /// before propagating. Unarmed (the default), this is a plain call —
    /// no `catch_unwind` frame and no branch inside the loop.
    fn guarded(
        &mut self,
        body: impl FnOnce(&mut Self) -> Result<(), SimError>,
    ) -> Result<(), SimError> {
        if self.postmortem.is_none() {
            return body(self);
        }
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(self))) {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => {
                self.dump_postmortem(&format!("run aborted: {e}"));
                Err(e)
            }
            Err(payload) => {
                self.dump_postmortem("panic in run loop");
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Run to completion while pulling the workload lazily from a
    /// [`JobSource`].
    ///
    /// Semantics are identical to [`Engine::load`] + [`Engine::run`] on
    /// the materialized equivalent of the stream — the differential
    /// suite in `crates/core/tests` pins `RunMetrics` identity — but
    /// arrivals are admitted only when the virtual clock reaches them
    /// and each job's record, id-map entry, and wait-view are reclaimed
    /// at completion, so peak memory tracks *live* jobs rather than
    /// trace length. Outcomes are still retained in
    /// [`SimResult::outcomes`]; use [`Engine::run_streaming_folded`] to
    /// bound that too.
    ///
    /// Two contract differences from the materialized path, both
    /// consequences of not holding the whole trace (see
    /// [`crate::source`]): duplicate job ids are only detected while the
    /// first holder is live, and an ECC issued for a reclaimed job
    /// counts as `dropped_stale` even when the materialized path would
    /// have classified it `dropped_policy`.
    pub fn run_streaming<Src: JobSource>(self, source: Src) -> Result<SimResult, SimError> {
        self.run_streaming_inner(source, None)
    }

    /// [`Engine::run_streaming`], but each [`JobOutcome`] is handed to
    /// `fold` at completion instead of being retained —
    /// [`SimResult::outcomes`] comes back empty, so a multi-million-job
    /// soak holds no per-job state at all past completion. Aggregate
    /// fields of the result (busy area, makespan, ECC stats, counters)
    /// are unaffected.
    pub fn run_streaming_folded<Src: JobSource>(
        self,
        source: Src,
        fold: &mut dyn FnMut(&JobOutcome),
    ) -> Result<SimResult, SimError> {
        self.run_streaming_inner(source, Some(fold))
    }

    fn run_streaming_inner<Src: JobSource>(
        mut self,
        mut source: Src,
        mut fold: OutcomeFold<'_>,
    ) -> Result<SimResult, SimError> {
        let wall = std::time::Instant::now();
        let mut engine_stats = EngineStats::default();
        self.state.reclaim = true;
        // Streaming preamble: just the run shape. Submit events are
        // emitted per job at admission, when the spec is first seen.
        if let Some(tr) = self.state.trace.as_deref_mut() {
            tr.record(TraceEvent::RunMeta {
                total: self.state.machine.total(),
                unit: self.state.machine.unit(),
                scheduler: self.scheduler.name().to_string(),
            });
        }
        self.guarded(|eng| eng.streaming_loop(&mut source, &mut fold, &mut engine_stats))?;
        self.finish(engine_stats, wall)
    }

    /// The streaming event loop, separated from
    /// [`Engine::run_streaming_inner`] for the same reason as
    /// [`Engine::run_loop`].
    fn streaming_loop<Src: JobSource>(
        &mut self,
        source: &mut Src,
        fold: &mut OutcomeFold<'_>,
        engine_stats: &mut EngineStats,
    ) -> Result<(), SimError> {
        let mut batch: Vec<Event> = Vec::new();
        // Exactly one item is held ahead of the clock so the next
        // instant is always known without draining the source.
        let mut pending = source.next_item();
        loop {
            let queue_t = self.state.queue.peek_time();
            let source_t = pending.as_ref().map(|i| i.time());
            let t = match (queue_t, source_t) {
                (None, None) => break,
                (Some(q), None) => q,
                (None, Some(s)) => s,
                (Some(q), Some(s)) => q.min(s),
            };
            if t < self.state.now {
                // Only a source item can sit behind the clock (queue
                // pushes are clamped to the present), so this is the
                // stream violating its ordering contract.
                return Err(SimError::UnorderedSource {
                    at: t,
                    clock: self.state.now,
                });
            }
            self.state.now = t;
            self.state.machine.advance_to(t);
            let mut dispatched = 0u64;
            // Admit every source item at this instant before draining
            // the queue: the materialized loader pushed all of them at
            // load time, ahead of any event the run itself scheduled, so
            // dispatching them first reproduces the bucket-FIFO order
            // (and therefore the whole run) exactly.
            while pending.as_ref().is_some_and(|i| i.time() == t) {
                let item = pending.take().expect("checked above");
                dispatched += 1;
                self.admit(item)?;
                pending = source.next_item();
            }
            loop {
                if self.state.queue.peek_time() != Some(t) {
                    break;
                }
                self.state.queue.drain_next_instant(&mut batch);
                for ev in batch.drain(..) {
                    dispatched += 1;
                    self.dispatch(ev, fold)?;
                }
            }
            engine_stats.events += dispatched;
            engine_stats.events_coalesced += dispatched - 1;
            engine_stats.cycles += 1;
            self.end_cycle(t, dispatched)?;
        }
        Ok(())
    }

    /// Admit one streamed item at its own instant: validate and enrol a
    /// job exactly like [`Engine::load`] then dispatch its arrival, or
    /// dispatch an ECC directly.
    fn admit(&mut self, item: SourceItem) -> Result<(), SimError> {
        match item {
            SourceItem::Job(spec) => {
                self.state
                    .machine
                    .is_valid_request(spec.num)
                    .map_err(|_| SimError::ImpossibleJob {
                        id: spec.id,
                        num: spec.num,
                    })?;
                // Recycle a completed job's slot when one is free — the
                // slab's high-water mark is the peak live-job count.
                let idx = match self.state.free_slots.pop() {
                    Some(idx) => {
                        self.state.records[idx] = JobRecord::new(spec);
                        idx
                    }
                    None => {
                        self.state.records.push(JobRecord::new(spec));
                        self.state.records.len() - 1
                    }
                };
                if self.state.id_map.insert(spec.id, idx).is_some() {
                    return Err(SimError::DuplicateJobId(spec.id));
                }
                self.first_arrival = self.first_arrival.min(spec.submit);
                self.last_arrival = self.last_arrival.max(spec.submit);
                trace_event!(
                    self.state.trace.as_deref_mut(),
                    TraceEvent::Submit {
                        job: spec.id.0,
                        at: spec.submit.as_secs(),
                        num: spec.num,
                        dur: spec.dur.as_secs(),
                        dedicated: spec.class.requested_start().is_some(),
                    }
                );
                self.handle_arrival(spec.id)
            }
            SourceItem::Ecc(ecc) => self.handle_ecc(ecc),
        }
    }

    /// Everything that happens once per distinct event timestamp after
    /// dispatch: the scheduling cycle, cycle tracing, state and timeline
    /// sampling, and invariants (debug asserts, or hard audit checks
    /// under the `audit` feature). Shared verbatim between the
    /// materialized and streaming loops.
    fn end_cycle(&mut self, t: SimTime, dispatched: u64) -> Result<(), SimError> {
        // Cycle span timing happens only when a sink is attached
        // *and* its timing knob is on — the untraced hot path never
        // reads the wall clock here.
        let cycle_t0 = match &self.state.trace {
            Some(tr) if tr.timing() => Some(std::time::Instant::now()),
            _ => None,
        };
        self.scheduler.cycle(&mut self.state);
        if self.state.trace.is_some() {
            let nanos = cycle_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
            let queue_depth = self.state.queue.len() as u32;
            let free = self.state.machine.free();
            let tr = self.state.trace.as_deref_mut().expect("checked above");
            if tr.timing() {
                tr.cycle_hist.record(nanos);
            }
            if tr.cycle_due() {
                tr.record(TraceEvent::Cycle {
                    at: t.as_secs(),
                    events: dispatched.min(u64::from(u32::MAX)) as u32,
                    queue_depth,
                    free,
                    nanos,
                });
            }
        }
        if let Some(every) = self.sample_every {
            let due = match self.last_sample {
                None => true,
                Some(prev) => t.saturating_since(prev) >= every,
            };
            if due {
                self.last_sample = Some(t);
                self.samples.push(StateSample {
                    at: t,
                    free: self.state.machine.free(),
                    waiting: self.scheduler.waiting_len(),
                    running: self.state.running.len(),
                });
            }
        }
        // Timeline sampling: one branch per cycle when disabled, one
        // time comparison when enabled but not yet due.
        if let Some(sampler) = self.timeline.as_deref_mut() {
            if sampler.due(t) {
                sampler.push(Self::take_sample(&self.state, &self.scheduler, t));
            }
        }
        // Wait attribution: same one-branch-per-cycle discipline.
        if self.state.attr.is_some() {
            self.attribute_cycle(t);
        }
        // Audit checks run *before* the debug asserts so an injected or
        // genuine inconsistency surfaces as a recoverable
        // [`SimError::AuditViolation`] (with postmortem) rather than an
        // assert panic in debug builds.
        #[cfg(feature = "audit")]
        self.audit_cycle(t)?;
        #[cfg(debug_assertions)]
        {
            self.state.running.check_invariants();
            debug_assert_eq!(
                self.state.running.used(),
                self.state.machine.used(),
                "running set and machine disagree on allocation"
            );
        }
        Ok(())
    }

    /// Capture one timeline point from post-cycle engine state. An
    /// associated function over disjoint borrows so the sampler itself
    /// can be held mutably by the caller.
    fn take_sample(state: &EngineState, scheduler: &S, at: SimTime) -> TimelineSample {
        let total = state.machine.total();
        let used = state.machine.used();
        let mut dedicated_procs = 0u32;
        let mut ecc_procs = 0u32;
        for rj in state.running.iter() {
            if let Some(rec) = state.record(rj.id) {
                if rec.spec.class.is_dedicated() {
                    dedicated_procs += rj.num;
                }
                if rec.ecc_count > 0 {
                    ecc_procs += rj.num;
                }
            }
        }
        // Views are arrival-ordered, so the first *live* one past the
        // cursor is the oldest waiting job. Dead (already-started) views
        // are skipped the same way compaction classifies them.
        let head = state.wait_head;
        let mut oldest_wait_secs = 0u64;
        for (v, &slot) in state.wait_views[head..]
            .iter()
            .zip(&state.wait_recs[head..])
        {
            let rec = &state.records[slot as usize];
            if rec.state == JobState::Waiting && rec.spec.id == v.id {
                oldest_wait_secs = at.saturating_since(v.submit).as_secs();
                break;
            }
        }
        let st = scheduler.stats();
        TimelineSample {
            at,
            util: if total == 0 {
                0.0
            } else {
                f64::from(used) / f64::from(total)
            },
            free: state.machine.free(),
            dedicated_procs,
            ecc_procs,
            queue_depth: scheduler.waiting_len() as u32,
            oldest_wait_secs,
            running: state.running.len() as u32,
            live_wait_views: (state.wait_views.len() - head) as u32,
            event_queue_len: (state.queue.len() as u64).saturating_sub(state.preloaded_pending)
                as u32,
            eccs_applied: state.ecc_stats.applied(),
            reconfigs: state.reconfig.total(),
            dp_cache_hits: st.dp_cache_hits,
            dp_cache_misses: st.dp_cache_misses,
            dp_incremental_hits: st.dp_incremental_hits,
            dp_incremental_rebuilds: st.dp_incremental_rebuilds,
        }
    }

    /// Post-cycle attribution pass: charge the interval since the last
    /// cycle to each waiting job's pending cause, then reclassify why
    /// each job still waits — capacity shortfall (and which running job
    /// leads the blockade), dedicated-node contention, processors
    /// gained by running jobs through expand-procs ECCs, a deliberate
    /// policy skip, or a freeze window — for the interval that begins
    /// now. O(running + waiting) per cycle, entered only when
    /// attribution is enabled.
    fn attribute_cycle(&mut self, t: SimTime) {
        // Take the attribution state out so the wait views, records,
        // and notes can be read while the per-job slab is written.
        let Some(mut attr) = self.state.attr.take() else {
            return;
        };
        let state = &self.state;
        let free = state.machine.free();
        // One pass over the running set: processors held by dedicated
        // jobs, processors gained through expand-procs ECCs, and the
        // largest single allocation (the capacity lead blocker; ties
        // break toward the lower id so both run paths agree regardless
        // of running-set iteration order).
        let mut ded_procs = 0u32;
        let mut ecc_procs = 0u32;
        let mut mal_procs = 0u32;
        let mut blocker = JobId(u64::MAX);
        let mut blocker_num = 0u32;
        for rj in state.running.iter() {
            if let Some(rec) = state.record(rj.id) {
                if rec.spec.class.is_dedicated() {
                    ded_procs += rj.num;
                }
                // Width above the preferred request splits between the
                // malleable layer's grows (tracked exactly in
                // `mal_gain`) and expand-procs ECCs (the rest).
                mal_procs += rec.mal_gain.min(rj.num);
                if rec.ecc_count > 0 {
                    ecc_procs += rj
                        .num
                        .saturating_sub(rec.spec.num)
                        .saturating_sub(rec.mal_gain);
                }
            }
            if rj.num > blocker_num || (rj.num == blocker_num && rj.id < blocker) {
                blocker = rj.id;
                blocker_num = rj.num;
            }
        }
        let head = state.wait_head;
        for (v, &slot) in state.wait_views[head..]
            .iter()
            .zip(&state.wait_recs[head..])
        {
            let idx = slot as usize;
            let rec = &state.records[idx];
            if rec.state != JobState::Waiting || rec.spec.id != v.id {
                continue; // dead view awaiting compaction
            }
            let ja = &mut attr.jobs[idx];
            ja.charge_until(t, rec.spec.eligible_at());
            // Capacity-style causes outrank policy causes: a job that
            // does not fit was not schedulable no matter what the
            // policy decided this cycle. Among the policy causes, a
            // deliberate skip outranks an ambient freeze window.
            ja.pending = if v.num > free {
                if v.num <= free + ded_procs {
                    PendingCause::Dedicated
                } else if v.num <= free + ded_procs + ecc_procs {
                    PendingCause::Ecc
                } else if v.num <= free + ded_procs + ecc_procs + mal_procs {
                    PendingCause::Malleable
                } else {
                    PendingCause::Capacity(blocker)
                }
            } else if attr.notes.skipped.contains(&v.id) {
                PendingCause::PolicySkip
            } else if attr.notes.freeze {
                PendingCause::Freeze
            } else {
                PendingCause::PolicySkip
            };
        }
        attr.notes.clear();
        self.state.attr = Some(attr);
    }

    /// Dump the flight recorder's ring plus an engine-state snapshot to
    /// the armed postmortem path. No-op when unarmed or already dumped
    /// (first failure wins); write errors are swallowed — the original
    /// failure must stay the one that propagates.
    fn dump_postmortem(&mut self, reason: &str) {
        let Some(rec) = self.postmortem.as_mut() else {
            return;
        };
        if rec.dumped {
            return;
        }
        rec.dumped = true;
        let path = rec.path.clone();
        let head = self.state.wait_head;
        let queue_heads: Vec<String> = self.state.wait_views[head..]
            .iter()
            .take(8)
            .map(|v| {
                format!(
                    "job {} ({} procs, {}s est, submitted t={}s)",
                    v.id.0,
                    v.num,
                    v.dur.as_secs(),
                    v.submit.as_secs()
                )
            })
            .collect();
        let sampler_tail: Vec<String> = self
            .timeline
            .as_deref()
            .map(|s| {
                let tail = s.samples();
                tail[tail.len().saturating_sub(8)..]
                    .iter()
                    .map(|p| serde_json::to_string(p).unwrap_or_default())
                    .collect()
            })
            .unwrap_or_default();
        let snapshot = PostmortemSnapshot {
            reason: reason.to_string(),
            at_secs: self.state.now.as_secs(),
            scheduler: self.scheduler.name().to_string(),
            machine_used: self.state.machine.used(),
            machine_total: self.state.machine.total(),
            event_queue_len: self.state.queue.len() as u64,
            running_jobs: self.state.running.len() as u64,
            waiting_jobs: self.scheduler.waiting_len() as u64,
            completed_jobs: self.completed,
            dropped_events: self.state.trace.as_deref().map_or(0, |t| t.dropped()),
            queue_heads,
            sampler_tail,
        };
        let events = self
            .state
            .trace
            .as_deref()
            .map(|t| t.events().cloned().collect::<Vec<_>>())
            .unwrap_or_default();
        let _ = elastisched_trace::write_postmortem(&path, &snapshot, &events);
        elastisched_trace::metric!(|reg| {
            reg.counter_add(elastisched_trace::metrics::keys::POSTMORTEM_DUMPS_TOTAL, 1);
        });
    }

    /// Count a named audit violation and build its error. The metric
    /// fires even when no flight recorder is armed, so a long campaign
    /// surfaces violations on `/metrics` without any other plumbing.
    #[cfg(feature = "audit")]
    fn audit_fail(check: &'static str, detail: String) -> SimError {
        elastisched_trace::metric!(|reg| {
            use elastisched_trace::metrics::keys;
            let key = match check {
                "capacity" => keys::AUDIT_CAPACITY_VIOLATIONS_TOTAL,
                "clock" => keys::AUDIT_CLOCK_VIOLATIONS_TOTAL,
                "ecc" => keys::AUDIT_ECC_VIOLATIONS_TOTAL,
                "slab" => keys::AUDIT_SLAB_VIOLATIONS_TOTAL,
                "attribution" => keys::AUDIT_ATTRIBUTION_VIOLATIONS_TOTAL,
                _ => keys::AUDIT_FIFO_VIOLATIONS_TOTAL,
            };
            reg.counter_add(key, 1);
        });
        SimError::AuditViolation { check, detail }
    }

    /// The always-on schedule audit: the invariants release builds used
    /// to compile out as `debug_assert!`s, promoted to hard per-cycle
    /// checks. Each failure is a named metric plus a recoverable
    /// [`SimError::AuditViolation`] (which the armed flight recorder
    /// turns into a postmortem dump). Cost is O(running + waiting) per
    /// cycle — the feature exists to be left on in soaks and services,
    /// not on the benchmark hot path.
    #[cfg(feature = "audit")]
    fn audit_cycle(&mut self, t: SimTime) -> Result<(), SimError> {
        // Virtual-clock monotonicity across cycles.
        if t < self.last_cycle_at {
            return Err(Self::audit_fail(
                "clock",
                format!(
                    "cycle at {}s after cycle at {}s",
                    t.as_secs(),
                    self.last_cycle_at.as_secs()
                ),
            ));
        }
        self.last_cycle_at = t;
        // Capacity conservation per node group: the machine's ledger,
        // the running set's ledger, and unit granularity must agree.
        let used = self.state.machine.used();
        let total = self.state.machine.total();
        let unit = self.state.machine.unit();
        if used > total || (unit > 0 && used % unit != 0) {
            return Err(Self::audit_fail(
                "capacity",
                format!("machine reports {used}/{total} used at unit {unit}"),
            ));
        }
        if self.state.running.used() != used {
            return Err(Self::audit_fail(
                "capacity",
                format!(
                    "running set holds {} procs but machine reports {used}",
                    self.state.running.used()
                ),
            ));
        }
        // ECC accounting: every running job's record must exist, be in
        // the Running state, and agree with the set on its (possibly
        // ECC-adjusted) allocation.
        for rj in self.state.running.iter() {
            let ok = self
                .state
                .record(rj.id)
                .is_some_and(|rec| rec.is_running() && rec.alloc == rj.num);
            if !ok {
                return Err(Self::audit_fail(
                    "ecc",
                    format!(
                        "running job {} ({} procs) disagrees with its record",
                        rj.id.0, rj.num
                    ),
                ));
            }
        }
        // Streamed-reclamation slab: every record slot is either live
        // (id-mapped) or free, never both, never neither.
        if self.state.id_map.len() + self.state.free_slots.len() != self.state.records.len() {
            return Err(Self::audit_fail(
                "slab",
                format!(
                    "{} live + {} free != {} slots",
                    self.state.id_map.len(),
                    self.state.free_slots.len(),
                    self.state.records.len()
                ),
            ));
        }
        // Bucket-FIFO dispatch order: live wait views are appended at
        // arrival and compaction preserves order, so their submit times
        // must be non-decreasing.
        let head = self.state.wait_head;
        let mut prev = SimTime::ZERO;
        for (v, &slot) in self.state.wait_views[head..]
            .iter()
            .zip(&self.state.wait_recs[head..])
        {
            let rec = &self.state.records[slot as usize];
            if rec.state != JobState::Waiting || rec.spec.id != v.id {
                continue; // dead view awaiting compaction
            }
            if v.submit < prev {
                return Err(Self::audit_fail(
                    "fifo",
                    format!(
                        "waiting job {} submitted at {}s ordered after {}s",
                        v.id.0,
                        v.submit.as_secs(),
                        prev.as_secs()
                    ),
                ));
            }
            prev = v.submit;
        }
        Ok(())
    }

    /// Test-only: skew the machine's allocation ledger away from the
    /// running set so the next cycle's capacity audit trips. Exists so
    /// the audit→postmortem path can be proven end to end without
    /// planting a real engine bug.
    #[cfg(feature = "audit")]
    #[doc(hidden)]
    pub fn inject_capacity_skew_for_test(&mut self) {
        let unit = self.state.machine.unit().max(1);
        let now = self.state.now;
        let _ = self.state.machine.allocate(unit, now);
    }

    /// Post-loop epilogue shared by both run paths: starvation check,
    /// queue counters, the timeline's forced final sample, metrics
    /// flush, and the [`SimResult`] itself.
    fn finish(
        mut self,
        mut engine_stats: EngineStats,
        wall: std::time::Instant,
    ) -> Result<SimResult, SimError> {
        if self.scheduler.waiting_len() > 0 {
            return Err(SimError::Starvation {
                waiting: self.scheduler.waiting_len(),
            });
        }
        engine_stats.queue_ops = self.state.queue.ops();
        engine_stats.peak_queue_len = self.state.queue.peak_len() as u64;
        engine_stats.peak_live_jobs = self.state.records.len() as u64;
        engine_stats.peak_wait_views = self.state.peak_wait_views as u64;
        engine_stats.jobs_reclaimed = self.reclaimed;
        engine_stats.engine_nanos = wall.elapsed().as_nanos() as u64;
        // Close the timeline with a forced end-of-run sample (replacing
        // the last one if the final cycle already sampled this instant),
        // so the makespan point is always present whatever the stride.
        let timeline = match self.timeline.take() {
            Some(mut sampler) => {
                let at = self.state.makespan.max(self.state.now);
                sampler.push(Self::take_sample(&self.state, &self.scheduler, at));
                sampler.into_timeline()
            }
            None => RunTimeline::default(),
        };
        let sched_stats = self.scheduler.stats();
        let attribution = self
            .state
            .attr
            .take()
            .map(|a| a.profile)
            .unwrap_or_default();
        // Flush run totals into the live metrics registry, once per run
        // — never per event, so the hot loop above stays registry-free.
        // `metric!` compiles out with the trace crate's `off` feature
        // and is a single branch on `None` when no registry is
        // installed (the default outside `--serve-metrics` campaigns).
        elastisched_trace::metric!(|reg| {
            use elastisched_trace::metrics::keys;
            reg.counter_add(keys::RUNS_TOTAL, 1);
            reg.counter_add(keys::JOBS_TOTAL, self.completed);
            reg.counter_add(keys::ENGINE_EVENTS_TOTAL, engine_stats.events);
            reg.counter_add(keys::ENGINE_CYCLES_TOTAL, engine_stats.cycles);
            reg.counter_add(keys::EVENTS_COALESCED_TOTAL, engine_stats.events_coalesced);
            reg.counter_add(keys::QUEUE_OPS_TOTAL, engine_stats.queue_ops);
            reg.counter_add(keys::ENGINE_NANOS_TOTAL, engine_stats.engine_nanos);
            reg.counter_add(keys::ECCS_APPLIED_TOTAL, self.state.ecc_stats.applied());
            reg.counter_add(keys::DP_CACHE_HITS_TOTAL, sched_stats.dp_cache_hits);
            reg.counter_add(keys::DP_CACHE_MISSES_TOTAL, sched_stats.dp_cache_misses);
            reg.counter_add(keys::DP_NANOS_TOTAL, sched_stats.dp_nanos);
            reg.counter_add(
                keys::DP_INCREMENTAL_HITS_TOTAL,
                sched_stats.dp_incremental_hits,
            );
            reg.counter_add(
                keys::DP_INCREMENTAL_REBUILDS_TOTAL,
                sched_stats.dp_incremental_rebuilds,
            );
            reg.counter_add(keys::HEAD_FORCE_STARTS_TOTAL, sched_stats.head_force_starts);
            reg.counter_add(keys::HEAD_SKIPS_TOTAL, sched_stats.head_skips);
            reg.counter_add(keys::DP_STARTS_TOTAL, sched_stats.dp_starts);
            reg.counter_add(
                keys::DEDICATED_PROMOTIONS_TOTAL,
                sched_stats.dedicated_promotions,
            );
            reg.counter_add(keys::JOBS_RECLAIMED_TOTAL, engine_stats.jobs_reclaimed);
            reg.gauge_set(
                keys::ENGINE_PEAK_WAIT_VIEWS,
                engine_stats.peak_wait_views as f64,
            );
            reg.gauge_set(
                keys::ENGINE_PEAK_LIVE_JOBS,
                engine_stats.peak_live_jobs as f64,
            );
            reg.gauge_set(keys::TIMELINE_SAMPLES, timeline.samples.len() as f64);
            if !attribution.is_empty() {
                reg.counter_add(keys::ATTR_JOBS_TOTAL, attribution.jobs);
                reg.counter_add(
                    keys::ATTR_CAPACITY_WAIT_SECONDS_TOTAL,
                    attribution.capacity_secs,
                );
                reg.counter_add(
                    keys::ATTR_DEDICATED_WAIT_SECONDS_TOTAL,
                    attribution.dedicated_secs,
                );
                reg.counter_add(keys::ATTR_ECC_WAIT_SECONDS_TOTAL, attribution.ecc_secs);
                reg.counter_add(
                    keys::ATTR_POLICY_SKIP_WAIT_SECONDS_TOTAL,
                    attribution.policy_skip_secs,
                );
                reg.counter_add(
                    keys::ATTR_FREEZE_WAIT_SECONDS_TOTAL,
                    attribution.freeze_secs,
                );
                reg.counter_add(
                    keys::ATTR_MALLEABLE_WAIT_SECONDS_TOTAL,
                    attribution.malleable_secs,
                );
            }
            if self.state.reconfig.total() > 0 {
                reg.counter_add(keys::RECONFIG_GROWS_TOTAL, self.state.reconfig.grows);
                reg.counter_add(keys::RECONFIG_SHRINKS_TOTAL, self.state.reconfig.shrinks);
                reg.counter_add(
                    keys::RECONFIG_PROCS_GRANTED_TOTAL,
                    self.state.reconfig.procs_granted,
                );
                reg.counter_add(
                    keys::RECONFIG_PROCS_RECLAIMED_TOTAL,
                    self.state.reconfig.procs_reclaimed,
                );
                reg.counter_add(
                    keys::RECONFIG_COST_SECONDS_TOTAL,
                    self.state.reconfig.cost_secs,
                );
            }
        });
        let state = self.state;
        Ok(SimResult {
            scheduler: self.scheduler.name(),
            sched_stats,
            outcomes: state.outcomes,
            machine_total: state.machine.total(),
            busy_area: state.machine.busy_area(),
            first_arrival: if self.first_arrival == SimTime::MAX {
                SimTime::ZERO
            } else {
                self.first_arrival
            },
            last_arrival: self.last_arrival,
            makespan: state.makespan,
            ecc: state.ecc_stats,
            reconfig: state.reconfig,
            samples: self.samples,
            engine: engine_stats,
            trace: state.trace,
            timeline,
            attribution,
        })
    }

    fn dispatch(&mut self, ev: Event, fold: &mut OutcomeFold<'_>) -> Result<(), SimError> {
        match ev {
            Event::Arrival(id) => {
                self.state.preloaded_pending -= 1;
                self.handle_arrival(id)
            }
            Event::Completion { job, epoch } => self.handle_completion(job, epoch, fold),
            Event::Ecc(ecc) => {
                self.state.preloaded_pending -= 1;
                self.handle_ecc(ecc)
            }
            Event::Wakeup => Ok(()),
        }
    }

    fn handle_arrival(&mut self, id: JobId) -> Result<(), SimError> {
        let now = self.state.now;
        let &idx = self
            .state
            .id_map
            .get(&id)
            .expect("arrival for unknown job");
        let wait_pos = self.state.wait_views.len() as u32;
        let rec = &mut self.state.records[idx];
        debug_assert_eq!(rec.state, JobState::Future, "double arrival");
        rec.state = JobState::Waiting;
        rec.wait_pos = wait_pos;
        let view = JobView {
            id,
            num: rec.alloc,
            dur: rec.est_dur,
            submit: rec.spec.submit,
            class: rec.spec.class,
        };
        // Ensure a cycle fires exactly at a dedicated job's requested
        // start time, even if no other event lands there.
        if let Some(start) = rec.spec.class.requested_start() {
            if start > now {
                self.state.queue.push(start, Event::Wakeup);
            }
        }
        // Appending a genuinely-waiting view keeps the snapshot exact, so
        // no dirty flag: arrival bursts stay O(1) per job.
        self.state.wait_views.push(view);
        self.state.wait_recs.push(idx as u32);
        self.state.peak_wait_views = self.state.peak_wait_views.max(self.state.wait_views.len());
        // Per-job attribution accumulator, slab-parallel to the record
        // (and recycled with its slot on the streaming paths).
        if let Some(attr) = self.state.attr.as_deref_mut() {
            if attr.jobs.len() <= idx {
                attr.jobs.resize(idx + 1, JobAttr::default());
            }
            attr.jobs[idx] = JobAttr::new(now);
        }
        trace_event!(
            self.state.trace.as_deref_mut(),
            TraceEvent::Queued {
                job: id.0,
                at: now.as_secs(),
            }
        );
        self.scheduler.on_arrival(view);
        Ok(())
    }

    fn handle_completion(
        &mut self,
        id: JobId,
        epoch: u64,
        fold: &mut OutcomeFold<'_>,
    ) -> Result<(), SimError> {
        let now = self.state.now;
        let Some(&idx) = self.state.id_map.get(&id) else {
            return Ok(());
        };
        let (alloc, started) = {
            let rec = &mut self.state.records[idx];
            if rec.completion_epoch != epoch {
                return Ok(()); // stale: an ECC rescheduled this completion
            }
            let started = match rec.state {
                JobState::Running { started, .. } => started,
                // A reduce-time ECC may complete the job inline and leave
                // the original completion event dangling.
                _ => return Ok(()),
            };
            rec.state = JobState::Completed {
                started,
                finished: now,
            };
            (rec.alloc, started)
        };
        self.state
            .machine
            .release(alloc, now)
            .map_err(|e| SimError::Start(e.to_string()))?;
        self.state.running.remove(id);
        self.push_outcome(idx, id, started, now, alloc, fold)?;
        self.scheduler.on_completion(id);
        if self.state.reclaim {
            // The job is fully accounted for; free its id and slot so a
            // streaming run's footprint tracks live jobs only. Any
            // not-yet-dispatched event naming this id (a stale
            // completion, a late ECC) already falls through the
            // unknown-id paths above and in `handle_ecc`.
            self.state.id_map.remove(&id);
            self.state.free_slots.push(idx);
            self.reclaimed += 1;
        }
        Ok(())
    }

    fn push_outcome(
        &mut self,
        idx: usize,
        id: JobId,
        started: SimTime,
        finished: SimTime,
        num: u32,
        fold: &mut OutcomeFold<'_>,
    ) -> Result<(), SimError> {
        let rec = &self.state.records[idx];
        let spec = &rec.spec;
        let eligible = spec.eligible_at();
        let wait = started.saturating_since(eligible);
        // Fold the job's wait attribution into the run profile (O(1),
        // so streamed reclamation loses nothing) and hold the engine to
        // the conservation invariant: every charge lands at a cycle
        // instant, so the cause buckets must telescope to exactly the
        // wait. Under the audit feature a mismatch is a recoverable
        // violation; otherwise a debug assert.
        let mut attribution = None;
        if let Some(attr) = self.state.attr.as_deref_mut() {
            let ja = attr.jobs[idx];
            let total = ja.attr.total_secs();
            if total != wait.as_secs() {
                #[cfg(feature = "audit")]
                return Err(Self::audit_fail(
                    "attribution",
                    format!(
                        "job {} cause buckets sum to {total}s but it waited {}s",
                        id.0,
                        wait.as_secs()
                    ),
                ));
                #[cfg(not(feature = "audit"))]
                debug_assert_eq!(
                    total,
                    wait.as_secs(),
                    "attribution buckets must sum to job {}'s wait",
                    id.0
                );
            }
            attr.profile.fold(&ja.attr);
            attribution = Some(ja.attr);
        }
        let outcome = JobOutcome {
            id,
            submit: spec.submit,
            requested_start: spec.class.requested_start(),
            started,
            finished,
            num,
            runtime: finished.saturating_since(started),
            wait,
            attribution,
        };
        trace_event!(
            self.state.trace.as_deref_mut(),
            TraceEvent::Finish {
                job: id.0,
                at: finished.as_secs(),
                num,
                wait: outcome.wait.as_secs(),
                runtime: outcome.runtime.as_secs(),
            }
        );
        self.state.makespan = self.state.makespan.max(finished);
        self.completed += 1;
        match fold {
            Some(f) => f(&outcome),
            None => self.state.outcomes.push(outcome),
        }
        Ok(())
    }

    fn handle_ecc(&mut self, ecc: EccSpec) -> Result<(), SimError> {
        let policy = self.state.ecc_policy;
        let allowed = if ecc.kind.is_time() {
            policy.time_elasticity
        } else {
            policy.resource_elasticity
        };
        if !allowed {
            self.state.ecc_stats.dropped_policy += 1;
            return Ok(());
        }
        let now = self.state.now;
        let unit = self.state.machine.unit();
        let total = self.state.machine.total();

        let Some(rec) = self.state.record_mut(ecc.job) else {
            self.state.ecc_stats.dropped_stale += 1;
            return Ok(());
        };
        if rec.ecc_count >= policy.max_per_job {
            self.state.ecc_stats.dropped_policy += 1;
            return Ok(());
        }

        match rec.state {
            JobState::Completed { .. } => {
                self.state.ecc_stats.dropped_stale += 1;
                Ok(())
            }
            JobState::Running { started, finish } => {
                self.apply_running_ecc(ecc, started, finish, now, unit)
            }
            JobState::Future | JobState::Waiting => {
                let was_waiting = rec.state == JobState::Waiting;
                let amount = Duration::from_secs(ecc.amount);
                match ecc.kind {
                    EccKind::ExtendTime => {
                        rec.est_dur = rec.est_dur.saturating_add(amount);
                        rec.actual_dur = rec.actual_dur.saturating_add(amount);
                    }
                    EccKind::ReduceTime => {
                        // A queued job keeps at least one second of work.
                        rec.est_dur =
                            rec.est_dur.saturating_sub(amount).max(Duration::from_secs(1));
                        rec.actual_dur = rec
                            .actual_dur
                            .saturating_sub(amount)
                            .max(Duration::from_secs(1));
                    }
                    EccKind::ExtendProcs => {
                        let grown = rec.alloc.saturating_add(round_up_to_unit(
                            ecc.amount.min(u64::from(u32::MAX)) as u32,
                            unit,
                        ));
                        rec.alloc = grown.min(total);
                    }
                    EccKind::ReduceProcs => {
                        let shrink =
                            round_down_to_unit(ecc.amount.min(u64::from(u32::MAX)) as u32, unit);
                        rec.alloc = rec.alloc.saturating_sub(shrink).max(unit);
                    }
                }
                rec.ecc_count += 1;
                let (id, num, dur) = (ecc.job, rec.alloc, rec.est_dur);
                let pos = rec.wait_pos as usize;
                self.state.ecc_stats.applied_queued += 1;
                trace_event!(
                    self.state.trace.as_deref_mut(),
                    TraceEvent::Ecc {
                        job: id.0,
                        at: now.as_secs(),
                        kind: ecc_tag(ecc.kind),
                        amount: ecc.amount,
                        num,
                        queued: true,
                    }
                );
                if was_waiting {
                    // The record knows its view's position (maintained by
                    // every compaction), so the in-place edit is O(1)
                    // instead of a scan of the snapshot buffer — the scan
                    // was quadratic over a long trace whose jobs mostly
                    // wait.
                    if let Some(v) = self.state.wait_views.get_mut(pos) {
                        if v.id == id {
                            v.num = num;
                            v.dur = dur;
                        }
                    }
                    self.scheduler.on_queued_ecc(id, num, dur);
                }
                Ok(())
            }
        }
    }

    fn apply_running_ecc(
        &mut self,
        ecc: EccSpec,
        started: SimTime,
        finish: SimTime,
        now: SimTime,
        unit: u32,
    ) -> Result<(), SimError> {
        let id = ecc.job;
        match ecc.kind {
            EccKind::ExtendTime | EccKind::ReduceTime => {
                let amount = Duration::from_secs(ecc.amount);
                let new_finish = if ecc.kind == EccKind::ExtendTime {
                    finish + amount
                } else {
                    // Cannot cut below "complete right now".
                    SimTime::from_secs(finish.as_secs().saturating_sub(amount.as_secs())).max(now)
                };
                let rec = self.state.record_mut(id).expect("checked above");
                rec.est_dur = new_finish - started;
                rec.actual_dur = rec.est_dur;
                rec.completion_epoch += 1;
                rec.ecc_count += 1;
                let epoch = rec.completion_epoch;
                let alloc = rec.alloc;
                rec.state = JobState::Running {
                    started,
                    finish: new_finish,
                };
                self.state.running.update_finish(id, new_finish);
                self.state
                    .queue
                    .push(new_finish, Event::Completion { job: id, epoch });
                self.state.ecc_stats.applied_running += 1;
                trace_event!(
                    self.state.trace.as_deref_mut(),
                    TraceEvent::Ecc {
                        job: id.0,
                        at: now.as_secs(),
                        kind: ecc_tag(ecc.kind),
                        amount: ecc.amount,
                        num: alloc,
                        queued: false,
                    }
                );
                Ok(())
            }
            EccKind::ExtendProcs => {
                let grow = round_up_to_unit(ecc.amount.min(u64::from(u32::MAX)) as u32, unit);
                if grow == 0 || !self.state.machine.can_fit(grow) {
                    self.state.ecc_stats.dropped_stale += 1;
                    return Ok(());
                }
                self.state
                    .machine
                    .allocate(grow, now)
                    .map_err(|e| SimError::Start(e.to_string()))?;
                let rec = self.state.record_mut(id).expect("checked above");
                rec.alloc += grow;
                rec.ecc_count += 1;
                let alloc = rec.alloc;
                self.state.running.update_num(id, alloc);
                self.state.ecc_stats.applied_running += 1;
                trace_event!(
                    self.state.trace.as_deref_mut(),
                    TraceEvent::Ecc {
                        job: id.0,
                        at: now.as_secs(),
                        kind: ecc_tag(ecc.kind),
                        amount: ecc.amount,
                        num: alloc,
                        queued: false,
                    }
                );
                Ok(())
            }
            EccKind::ReduceProcs => {
                let rec = self.state.record_mut(id).expect("checked above");
                let shrink = round_down_to_unit(ecc.amount.min(u64::from(u32::MAX)) as u32, unit)
                    .min(rec.alloc.saturating_sub(unit));
                if shrink == 0 {
                    self.state.ecc_stats.dropped_stale += 1;
                    return Ok(());
                }
                rec.alloc -= shrink;
                rec.ecc_count += 1;
                let alloc = rec.alloc;
                self.state.running.update_num(id, alloc);
                self.state
                    .machine
                    .release(shrink, now)
                    .map_err(|e| SimError::Start(e.to_string()))?;
                self.state.ecc_stats.applied_running += 1;
                trace_event!(
                    self.state.trace.as_deref_mut(),
                    TraceEvent::Ecc {
                        job: id.0,
                        at: now.as_secs(),
                        kind: ecc_tag(ecc.kind),
                        amount: ecc.amount,
                        num: alloc,
                        queued: false,
                    }
                );
                Ok(())
            }
        }
    }
}

/// Convenience: build, load, and run in one call.
pub fn simulate<S: Scheduler>(
    machine: Machine,
    scheduler: S,
    ecc_policy: EccPolicy,
    jobs: &[JobSpec],
    eccs: &[EccSpec],
) -> Result<SimResult, SimError> {
    let mut engine = Engine::new(machine, scheduler, ecc_policy);
    engine.load(jobs, eccs)?;
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    /// A trivial FIFO scheduler used only to exercise the engine: starts
    /// the head job whenever it fits, never reorders.
    struct TestFifo {
        queue: std::collections::VecDeque<JobView>,
    }

    impl TestFifo {
        fn new() -> Self {
            TestFifo {
                queue: std::collections::VecDeque::new(),
            }
        }
    }

    impl Scheduler for TestFifo {
        fn on_arrival(&mut self, job: JobView) {
            self.queue.push_back(job);
        }

        fn on_queued_ecc(&mut self, id: JobId, num: u32, dur: Duration) {
            if let Some(j) = self.queue.iter_mut().find(|j| j.id == id) {
                j.num = num;
                j.dur = dur;
            }
        }

        fn cycle(&mut self, ctx: &mut dyn SchedContext) {
            while let Some(head) = self.queue.front() {
                if head.num <= ctx.free() {
                    let id = head.id;
                    ctx.start(id).expect("fit was checked");
                    self.queue.pop_front();
                } else {
                    break;
                }
            }
        }

        fn waiting_len(&self) -> usize {
            self.queue.len()
        }

        fn name(&self) -> &'static str {
            "TestFifo"
        }
    }

    fn run_jobs(jobs: &[JobSpec], eccs: &[EccSpec], policy: EccPolicy) -> SimResult {
        simulate(Machine::bluegene_p(), TestFifo::new(), policy, jobs, eccs).unwrap()
    }

    #[test]
    fn two_sequential_jobs_complete() {
        let jobs = vec![
            JobSpec::batch(1, 0, 320, 100),
            JobSpec::batch(2, 0, 320, 100),
        ];
        let r = run_jobs(&jobs, &[], EccPolicy::disabled());
        assert_eq!(r.outcomes.len(), 2);
        let o1 = &r.outcomes[0];
        let o2 = &r.outcomes[1];
        assert_eq!(o1.started, SimTime::from_secs(0));
        assert_eq!(o1.finished, SimTime::from_secs(100));
        assert_eq!(o2.started, SimTime::from_secs(100));
        assert_eq!(o2.finished, SimTime::from_secs(200));
        assert_eq!(r.makespan, SimTime::from_secs(200));
        // Both jobs kept the whole machine busy: utilization == 1.
        assert!((r.mean_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_jobs_share_machine() {
        let jobs = vec![
            JobSpec::batch(1, 0, 160, 100),
            JobSpec::batch(2, 0, 160, 100),
        ];
        let r = run_jobs(&jobs, &[], EccPolicy::disabled());
        assert_eq!(r.makespan, SimTime::from_secs(100));
        assert!((r.mean_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_area_equals_work_done() {
        let jobs = vec![
            JobSpec::batch(1, 0, 96, 50),
            JobSpec::batch(2, 10, 64, 200),
            JobSpec::batch(3, 400, 32, 10),
        ];
        let r = run_jobs(&jobs, &[], EccPolicy::disabled());
        let work: f64 = r
            .outcomes
            .iter()
            .map(|o| o.num as f64 * o.runtime.as_secs_f64())
            .sum();
        assert!((r.busy_area - work).abs() < 1e-9);
    }

    #[test]
    fn extend_time_delays_completion() {
        let jobs = vec![JobSpec::batch(1, 0, 320, 100)];
        let eccs = vec![EccSpec::extend_time(JobId(1), SimTime::from_secs(50), 40)];
        let r = run_jobs(&jobs, &eccs, EccPolicy::time_only());
        assert_eq!(r.outcomes[0].finished, SimTime::from_secs(140));
        assert_eq!(r.ecc.applied_running, 1);
    }

    #[test]
    fn reduce_time_hastens_completion() {
        let jobs = vec![JobSpec::batch(1, 0, 320, 100)];
        let eccs = vec![EccSpec::reduce_time(JobId(1), SimTime::from_secs(50), 30)];
        let r = run_jobs(&jobs, &eccs, EccPolicy::time_only());
        assert_eq!(r.outcomes[0].finished, SimTime::from_secs(70));
    }

    #[test]
    fn reduce_time_clamps_at_now() {
        let jobs = vec![JobSpec::batch(1, 0, 320, 100)];
        let eccs = vec![EccSpec::reduce_time(JobId(1), SimTime::from_secs(90), 500)];
        let r = run_jobs(&jobs, &eccs, EccPolicy::time_only());
        assert_eq!(r.outcomes[0].finished, SimTime::from_secs(90));
    }

    #[test]
    fn ecc_on_queued_job_changes_runtime() {
        let jobs = vec![
            JobSpec::batch(1, 0, 320, 100),
            JobSpec::batch(2, 0, 320, 100), // waits behind job 1
        ];
        let eccs = vec![EccSpec::extend_time(JobId(2), SimTime::from_secs(10), 50)];
        let r = run_jobs(&jobs, &eccs, EccPolicy::time_only());
        let o2 = r.outcomes.iter().find(|o| o.id == JobId(2)).unwrap();
        assert_eq!(o2.runtime, Duration::from_secs(150));
        assert_eq!(r.ecc.applied_queued, 1);
    }

    #[test]
    fn disabled_policy_drops_all_eccs() {
        let jobs = vec![JobSpec::batch(1, 0, 320, 100)];
        let eccs = vec![EccSpec::extend_time(JobId(1), SimTime::from_secs(50), 40)];
        let r = run_jobs(&jobs, &eccs, EccPolicy::disabled());
        assert_eq!(r.outcomes[0].finished, SimTime::from_secs(100));
        assert_eq!(r.ecc.dropped_policy, 1);
    }

    #[test]
    fn per_job_ecc_cap_enforced() {
        let jobs = vec![JobSpec::batch(1, 0, 320, 100)];
        let eccs = vec![
            EccSpec::extend_time(JobId(1), SimTime::from_secs(10), 10),
            EccSpec::extend_time(JobId(1), SimTime::from_secs(20), 10),
            EccSpec::extend_time(JobId(1), SimTime::from_secs(30), 10),
        ];
        let r = run_jobs(&jobs, &eccs, EccPolicy::time_only().max_per_job(2));
        assert_eq!(r.outcomes[0].finished, SimTime::from_secs(120));
        assert_eq!(r.ecc.dropped_policy, 1);
    }

    #[test]
    fn ecc_after_completion_is_stale() {
        let jobs = vec![JobSpec::batch(1, 0, 320, 10)];
        let eccs = vec![EccSpec::extend_time(JobId(1), SimTime::from_secs(50), 40)];
        let r = run_jobs(&jobs, &eccs, EccPolicy::time_only());
        assert_eq!(r.outcomes[0].finished, SimTime::from_secs(10));
        assert_eq!(r.ecc.dropped_stale, 1);
    }

    #[test]
    fn processor_extension_grows_running_job() {
        let jobs = vec![JobSpec::batch(1, 0, 64, 100)];
        let eccs = vec![EccSpec {
            job: JobId(1),
            issue_at: SimTime::from_secs(50),
            kind: EccKind::ExtendProcs,
            amount: 64,
        }];
        let r = run_jobs(&jobs, &eccs, EccPolicy::with_resource_elasticity());
        assert_eq!(r.outcomes[0].num, 128);
        // 64 procs * 50 s + 128 procs * 50 s
        assert!((r.busy_area - (64.0 * 50.0 + 128.0 * 50.0)).abs() < 1e-9);
    }

    #[test]
    fn processor_reduction_shrinks_but_keeps_a_unit() {
        let jobs = vec![JobSpec::batch(1, 0, 64, 100)];
        let eccs = vec![EccSpec {
            job: JobId(1),
            issue_at: SimTime::from_secs(50),
            kind: EccKind::ReduceProcs,
            amount: 1000,
        }];
        let r = run_jobs(&jobs, &eccs, EccPolicy::with_resource_elasticity());
        assert_eq!(r.outcomes[0].num, 32, "cannot shrink below one unit");
    }

    #[test]
    fn impossible_job_rejected_at_load() {
        let jobs = vec![JobSpec::batch(1, 0, 352, 100)];
        let err = simulate(
            Machine::bluegene_p(),
            TestFifo::new(),
            EccPolicy::disabled(),
            &jobs,
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, SimError::ImpossibleJob { .. }));
    }

    #[test]
    fn duplicate_id_rejected() {
        let jobs = vec![JobSpec::batch(1, 0, 32, 100), JobSpec::batch(1, 5, 32, 10)];
        let err = simulate(
            Machine::bluegene_p(),
            TestFifo::new(),
            EccPolicy::disabled(),
            &jobs,
            &[],
        )
        .unwrap_err();
        assert_eq!(err, SimError::DuplicateJobId(JobId(1)));
    }

    #[test]
    fn dedicated_wakeup_triggers_cycle_at_requested_start() {
        // FIFO ignores requested starts, but the engine must still fire a
        // wakeup event at t=500 — observable as the job starting then,
        // because nothing else happens at t=500.
        let jobs = vec![
            JobSpec::batch(1, 0, 320, 100),
            JobSpec::dedicated(2, 0, 32, 10, 500),
        ];
        let r = run_jobs(&jobs, &[], EccPolicy::disabled());
        assert_eq!(r.outcomes.len(), 2);
    }

    #[test]
    fn wait_times_recorded_from_eligibility() {
        let jobs = vec![
            JobSpec::batch(1, 0, 320, 100),
            JobSpec::batch(2, 30, 320, 50),
        ];
        let r = run_jobs(&jobs, &[], EccPolicy::disabled());
        let o2 = r.outcomes.iter().find(|o| o.id == JobId(2)).unwrap();
        assert_eq!(o2.wait, Duration::from_secs(70)); // started at 100, arrived 30
    }

    #[test]
    fn zero_duration_job_completes_immediately() {
        let jobs = vec![JobSpec::batch(1, 0, 32, 0)];
        let r = run_jobs(&jobs, &[], EccPolicy::disabled());
        assert_eq!(r.outcomes[0].runtime, Duration::ZERO);
        assert_eq!(r.outcomes[0].finished, SimTime::ZERO);
    }

    #[test]
    fn overestimated_job_releases_early() {
        // est 100s but actually runs 40s: the next job starts at t=40.
        let mut j1 = JobSpec::batch(1, 0, 320, 100);
        j1.actual = Duration::from_secs(40);
        let jobs = vec![j1, JobSpec::batch(2, 0, 320, 10)];
        let r = run_jobs(&jobs, &[], EccPolicy::disabled());
        let o2 = r.outcomes.iter().find(|o| o.id == JobId(2)).unwrap();
        assert_eq!(o2.started, SimTime::from_secs(40));
    }

    #[test]
    fn untraced_run_carries_no_sink() {
        let r = run_jobs(&[JobSpec::batch(1, 0, 32, 10)], &[], EccPolicy::disabled());
        assert!(r.trace.is_none());
    }

    #[test]
    fn traced_run_records_full_lifecycle() {
        let jobs = vec![
            JobSpec::batch(1, 0, 320, 100),
            JobSpec::batch(2, 30, 320, 50),
        ];
        let mut engine = Engine::new(
            Machine::bluegene_p(),
            TestFifo::new(),
            EccPolicy::disabled(),
        );
        let mut sink = TraceSink::new();
        sink.disable_timing();
        engine.enable_tracing(sink);
        engine.load(&jobs, &[]).unwrap();
        let r = engine.run().unwrap();
        let tr = r.trace.as_deref().expect("tracing was enabled");
        let count = |f: fn(&TraceEvent) -> bool| tr.events().filter(|e| f(e)).count();
        assert_eq!(count(|e| matches!(e, TraceEvent::RunMeta { .. })), 1);
        assert_eq!(count(|e| matches!(e, TraceEvent::Submit { .. })), 2);
        assert_eq!(count(|e| matches!(e, TraceEvent::Queued { .. })), 2);
        assert_eq!(count(|e| matches!(e, TraceEvent::Start { .. })), 2);
        assert_eq!(count(|e| matches!(e, TraceEvent::Finish { .. })), 2);
        assert!(count(|e| matches!(e, TraceEvent::Cycle { .. })) > 0);
        // Timing disabled: every cycle span is zeroed and the histogram
        // stays empty, so the trace is byte-deterministic.
        assert!(tr
            .events()
            .all(|e| !matches!(e, TraceEvent::Cycle { nanos, .. } if *nanos != 0)));
        assert!(tr.cycle_hist.is_empty());
        // Job 2 waits 70 s; the Finish event carries the same accounting
        // as the outcome record.
        assert!(tr
            .events()
            .any(|e| matches!(e, TraceEvent::Finish { job: 2, wait: 70, runtime: 50, .. })));
    }

    #[test]
    fn timeline_disabled_leaves_result_empty() {
        let r = run_jobs(&[JobSpec::batch(1, 0, 32, 10)], &[], EccPolicy::disabled());
        assert!(r.timeline.is_empty());
    }

    #[test]
    fn timeline_sampling_is_budget_bounded_and_covers_the_run() {
        // 200 sequential full-machine jobs: plenty of distinct cycle
        // timestamps, so a 32-point budget must decimate repeatedly.
        let jobs: Vec<JobSpec> = (0..200)
            .map(|i| JobSpec::batch(i + 1, i * 10, 320, 50))
            .collect();
        let mut engine = Engine::new(
            Machine::bluegene_p(),
            TestFifo::new(),
            EccPolicy::disabled(),
        );
        engine.enable_timeline(crate::sampler::TimelineConfig {
            stride: Duration::from_secs(1),
            budget: 32,
        });
        engine.load(&jobs, &[]).unwrap();
        let r = engine.run().unwrap();
        let tl = &r.timeline;
        assert!(!tl.is_empty());
        assert!(tl.samples.len() <= 32, "budget exceeded: {}", tl.samples.len());
        assert!(tl.decimations > 0, "a dense run must have decimated");
        assert_eq!(tl.samples[0].at, SimTime::ZERO, "first cycle retained");
        assert_eq!(
            tl.samples.last().unwrap().at,
            r.makespan,
            "forced end-of-run sample sits at the makespan"
        );
        // The final sample sees a drained system.
        let last = tl.samples.last().unwrap();
        assert_eq!(last.running, 0);
        assert_eq!(last.queue_depth, 0);
        assert_eq!(last.free, 320);
        // Mid-run samples saw the machine fully busy.
        assert!(tl.samples.iter().any(|s| s.util == 1.0));
    }

    #[test]
    fn traced_run_with_timing_populates_cycle_hist() {
        let jobs = vec![JobSpec::batch(1, 0, 32, 10)];
        let mut engine = Engine::new(
            Machine::bluegene_p(),
            TestFifo::new(),
            EccPolicy::disabled(),
        );
        engine.enable_tracing(TraceSink::new());
        engine.load(&jobs, &[]).unwrap();
        let r = engine.run().unwrap();
        let tr = r.trace.as_deref().unwrap();
        assert!(!tr.cycle_hist.is_empty());
    }

    mod streaming {
        use super::*;
        use crate::source::{JobSource, SliceSource, SourceItem};

        fn mixed_workload() -> (Vec<JobSpec>, Vec<EccSpec>) {
            // Overlapping jobs, a dedicated job, and ECCs that land while
            // their targets are queued, running, and completed — every
            // admission path the streaming loop has to reproduce.
            let mut j3 = JobSpec::batch(3, 40, 320, 200);
            j3.actual = Duration::from_secs(120);
            let jobs = vec![
                JobSpec::batch(1, 0, 160, 100),
                JobSpec::batch(2, 0, 160, 80),
                j3,
                JobSpec::dedicated(4, 50, 32, 30, 400),
                JobSpec::batch(5, 50, 64, 60),
                JobSpec::batch(6, 300, 320, 10),
            ];
            let eccs = vec![
                EccSpec::extend_time(JobId(2), SimTime::from_secs(40), 20),
                EccSpec::reduce_time(JobId(3), SimTime::from_secs(50), 30),
                EccSpec::extend_time(JobId(5), SimTime::from_secs(60), 25),
                EccSpec::extend_time(JobId(1), SimTime::from_secs(150), 10), // stale
            ];
            (jobs, eccs)
        }

        fn materialized(jobs: &[JobSpec], eccs: &[EccSpec]) -> SimResult {
            simulate(
                Machine::bluegene_p(),
                TestFifo::new(),
                EccPolicy::time_only(),
                jobs,
                eccs,
            )
            .unwrap()
        }

        #[test]
        fn streaming_reproduces_the_materialized_run() {
            let (jobs, eccs) = mixed_workload();
            let mat = materialized(&jobs, &eccs);
            let engine = Engine::new(
                Machine::bluegene_p(),
                TestFifo::new(),
                EccPolicy::time_only(),
            );
            let st = engine
                .run_streaming(SliceSource::new(&jobs, &eccs))
                .unwrap();
            assert_eq!(st.outcomes, mat.outcomes);
            assert_eq!(st.makespan, mat.makespan);
            assert_eq!(st.busy_area, mat.busy_area);
            assert_eq!(st.ecc, mat.ecc);
            assert_eq!(st.first_arrival, mat.first_arrival);
            assert_eq!(st.last_arrival, mat.last_arrival);
            assert_eq!(st.engine.events, mat.engine.events);
            assert_eq!(st.engine.cycles, mat.engine.cycles);
        }

        #[test]
        fn folded_run_yields_the_same_outcomes_without_retaining_them() {
            let (jobs, eccs) = mixed_workload();
            let mat = materialized(&jobs, &eccs);
            let engine = Engine::new(
                Machine::bluegene_p(),
                TestFifo::new(),
                EccPolicy::time_only(),
            );
            let mut folded = Vec::new();
            let st = engine
                .run_streaming_folded(SliceSource::new(&jobs, &eccs), &mut |o| {
                    folded.push(o.clone())
                })
                .unwrap();
            assert!(st.outcomes.is_empty(), "folded run must not retain outcomes");
            assert_eq!(folded, mat.outcomes);
            assert_eq!(st.makespan, mat.makespan);
            assert_eq!(st.busy_area, mat.busy_area);
        }

        #[test]
        fn streaming_reclaims_job_state() {
            // 1000 strictly sequential full-machine jobs: only one is
            // ever live, so the record slab must stay tiny while the
            // materialized path holds all 1000.
            let jobs: Vec<JobSpec> = (0..1000)
                .map(|i| JobSpec::batch(i + 1, i * 100, 320, 50))
                .collect();
            let mat = materialized(&jobs, &[]);
            assert_eq!(mat.engine.peak_live_jobs, 1000);
            let engine = Engine::new(
                Machine::bluegene_p(),
                TestFifo::new(),
                EccPolicy::disabled(),
            );
            let st = engine.run_streaming(SliceSource::new(&jobs, &[])).unwrap();
            assert_eq!(st.outcomes, mat.outcomes);
            assert!(
                st.engine.peak_live_jobs <= 2,
                "streaming slab grew to {} for sequential jobs",
                st.engine.peak_live_jobs
            );
        }

        #[test]
        fn wait_view_buffer_stays_bounded_without_snapshot_borrows() {
            // A policy that runs starts off its own queue — LIFO here, so
            // almost every start is out of order — and never calls
            // `waiting_jobs()`. The borrow-time compaction alone would
            // then never fire and the snapshot buffer would hold one dead
            // view per job for the whole run; the start-time pass must
            // keep it proportional to the live backlog instead.
            struct TestLifo {
                queue: Vec<JobView>,
            }
            impl Scheduler for TestLifo {
                fn on_arrival(&mut self, job: JobView) {
                    self.queue.push(job);
                }
                fn cycle(&mut self, ctx: &mut dyn SchedContext) {
                    while let Some(last) = self.queue.last() {
                        if last.num <= ctx.free() {
                            ctx.start(last.id).expect("fit was checked");
                            self.queue.pop();
                        } else {
                            break;
                        }
                    }
                }
                fn waiting_len(&self) -> usize {
                    self.queue.len()
                }
                fn name(&self) -> &'static str {
                    "TestLifo"
                }
            }
            // 1667 bursts of three full-machine jobs: the backlog never
            // exceeds three, but a dead view accrues per start — enough
            // of them to cross the start-time compaction floor several
            // times over.
            let jobs: Vec<JobSpec> = (0..5001)
                .map(|i| JobSpec::batch(i + 1, (i / 3) * 6, 320, 2))
                .collect();
            let r = simulate(
                Machine::bluegene_p(),
                TestLifo { queue: Vec::new() },
                EccPolicy::disabled(),
                &jobs,
                &[],
            )
            .unwrap();
            assert_eq!(r.outcomes.len(), 5001);
            // The pass fires once dead views pass the 1024 floor and
            // outnumber live ones, so the buffer tops out near the floor
            // — not near the 5001-view trace.
            assert!(
                r.engine.peak_wait_views < 2200,
                "wait-view buffer grew to {} for a backlog of 3",
                r.engine.peak_wait_views
            );
        }

        #[test]
        fn streaming_timeline_matches_materialized_exactly() {
            let (jobs, eccs) = mixed_workload();
            let cfg = crate::sampler::TimelineConfig {
                stride: Duration::from_secs(1),
                budget: 16,
            };
            let mut m = Engine::new(
                Machine::bluegene_p(),
                TestFifo::new(),
                EccPolicy::time_only(),
            );
            m.enable_timeline(cfg);
            m.load(&jobs, &eccs).unwrap();
            let mat = m.run().unwrap();
            let mut s = Engine::new(
                Machine::bluegene_p(),
                TestFifo::new(),
                EccPolicy::time_only(),
            );
            s.enable_timeline(cfg);
            let st = s.run_streaming(SliceSource::new(&jobs, &eccs)).unwrap();
            assert!(!mat.timeline.is_empty());
            // Field-for-field identity, `event_queue_len` included: the
            // sampler counts only reactive events, netting out the
            // loader's pre-queued arrivals (see the sampler module docs).
            assert_eq!(mat.timeline, st.timeline);
        }

        #[test]
        fn flight_recorder_dumps_a_parseable_postmortem_on_loop_error() {
            // A backwards source fails inside the guarded loop with
            // UnorderedSource; the armed recorder must leave a readable
            // dump behind before the error propagates.
            struct Backwards(u32);
            impl JobSource for Backwards {
                fn next_item(&mut self) -> Option<SourceItem> {
                    self.0 += 1;
                    match self.0 {
                        1 => Some(SourceItem::Job(JobSpec::batch(1, 100, 32, 10))),
                        2 => Some(SourceItem::Job(JobSpec::batch(2, 50, 32, 10))),
                        _ => None,
                    }
                }
            }
            let path = std::env::temp_dir().join(format!(
                "elastisched-postmortem-unordered-{}.jsonl",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&path);
            let mut engine = Engine::new(
                Machine::bluegene_p(),
                TestFifo::new(),
                EccPolicy::disabled(),
            );
            engine.enable_flight_recorder(&path);
            let err = engine.run_streaming(Backwards(0)).unwrap_err();
            assert!(matches!(err, SimError::UnorderedSource { .. }), "{err}");
            let text = std::fs::read_to_string(&path).expect("postmortem file written");
            let (snap, events) = elastisched_trace::read_postmortem(&text).unwrap();
            assert!(snap.reason.contains("behind the clock"), "{}", snap.reason);
            assert_eq!(snap.scheduler, "TestFifo");
            assert_eq!(snap.machine_total, 320);
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Submit { job: 1, .. })),
                "ring retained the admission preceding the failure"
            );
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn unordered_source_is_rejected() {
            struct Backwards(u32);
            impl JobSource for Backwards {
                fn next_item(&mut self) -> Option<SourceItem> {
                    self.0 += 1;
                    match self.0 {
                        1 => Some(SourceItem::Job(JobSpec::batch(1, 100, 32, 10))),
                        2 => Some(SourceItem::Job(JobSpec::batch(2, 50, 32, 10))),
                        _ => None,
                    }
                }
            }
            let engine = Engine::new(
                Machine::bluegene_p(),
                TestFifo::new(),
                EccPolicy::disabled(),
            );
            let err = engine.run_streaming(Backwards(0)).unwrap_err();
            assert!(matches!(err, SimError::UnorderedSource { .. }), "{err}");
        }

        #[test]
        fn duplicate_live_id_is_rejected_mid_stream() {
            let jobs = vec![
                JobSpec::batch(1, 0, 32, 1000),
                JobSpec::batch(1, 10, 32, 10),
            ];
            let engine = Engine::new(
                Machine::bluegene_p(),
                TestFifo::new(),
                EccPolicy::disabled(),
            );
            let err = engine.run_streaming(SliceSource::new(&jobs, &[])).unwrap_err();
            assert_eq!(err, SimError::DuplicateJobId(JobId(1)));
        }

        #[test]
        fn reused_id_after_completion_is_admitted() {
            // Part of the documented streaming contract: uniqueness is
            // only enforced among live jobs, so an id recycled after its
            // first holder completed is a fresh job.
            let jobs = vec![JobSpec::batch(1, 0, 320, 10), JobSpec::batch(1, 100, 320, 10)];
            let engine = Engine::new(
                Machine::bluegene_p(),
                TestFifo::new(),
                EccPolicy::disabled(),
            );
            let st = engine.run_streaming(SliceSource::new(&jobs, &[])).unwrap();
            assert_eq!(st.outcomes.len(), 2);
            assert_eq!(st.makespan, SimTime::from_secs(110));
        }

        #[test]
        fn impossible_job_rejected_at_admission() {
            let jobs = vec![JobSpec::batch(1, 0, 352, 100)];
            let engine = Engine::new(
                Machine::bluegene_p(),
                TestFifo::new(),
                EccPolicy::disabled(),
            );
            let err = engine.run_streaming(SliceSource::new(&jobs, &[])).unwrap_err();
            assert!(matches!(err, SimError::ImpossibleJob { .. }));
        }

        #[test]
        fn empty_source_finishes_clean() {
            let engine = Engine::new(
                Machine::bluegene_p(),
                TestFifo::new(),
                EccPolicy::disabled(),
            );
            let st = engine.run_streaming(SliceSource::new(&[], &[])).unwrap();
            assert!(st.outcomes.is_empty());
            assert_eq!(st.engine.events, 0);
        }
    }

    mod malleable {
        use super::*;
        use crate::reconfig::ReconfigCost;
        use crate::SliceSource;

        /// FIFO that reclaims width from running malleable jobs when the
        /// head does not fit, and (optionally) grows running malleable
        /// jobs into leftover free processors — a miniature of the `+m`
        /// stack layer, used to exercise the engine API directly.
        struct MalleableFifo {
            queue: std::collections::VecDeque<JobView>,
            grow_after: bool,
        }

        impl MalleableFifo {
            fn new(grow_after: bool) -> Self {
                MalleableFifo {
                    queue: std::collections::VecDeque::new(),
                    grow_after,
                }
            }
        }

        impl Scheduler for MalleableFifo {
            fn on_arrival(&mut self, job: JobView) {
                self.queue.push_back(job);
            }

            fn cycle(&mut self, ctx: &mut dyn SchedContext) {
                while let Some(head) = self.queue.front().copied() {
                    if head.num > ctx.free() {
                        let need = head.num - ctx.free();
                        let ids: Vec<JobId> = ctx.running().iter().map(|r| r.id).collect();
                        let mut got = 0u32;
                        for id in ids {
                            if got >= need {
                                break;
                            }
                            got += ctx.shrink_running(id, need - got);
                        }
                    }
                    if head.num <= ctx.free() {
                        ctx.start(head.id).expect("fit was ensured");
                        self.queue.pop_front();
                    } else {
                        break;
                    }
                }
                if self.grow_after {
                    let ids: Vec<JobId> = ctx.running().iter().map(|r| r.id).collect();
                    for id in ids {
                        let free = ctx.free();
                        if free == 0 {
                            break;
                        }
                        ctx.grow_running(id, free);
                    }
                }
            }

            fn waiting_len(&self) -> usize {
                self.queue.len()
            }

            fn name(&self) -> &'static str {
                "MalleableFifo"
            }
        }

        #[test]
        fn shrink_admits_blocked_head_and_charges_cost() {
            // Job 1 holds 256 of 320 but tolerates 128; job 2 needs 128.
            let jobs = vec![
                JobSpec::batch(1, 0, 256, 100).with_proc_range(128, 320),
                JobSpec::batch(2, 10, 128, 100),
            ];
            let r = simulate(
                Machine::bluegene_p(),
                MalleableFifo::new(false),
                EccPolicy::disabled(),
                &jobs,
                &[],
            )
            .unwrap();
            let o2 = r.outcomes.iter().find(|o| o.id == JobId(2)).unwrap();
            assert_eq!(o2.started, SimTime::from_secs(10), "head admitted via shrink");
            let o1 = r.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
            // Work-conserving stretch: 90 s remaining at t=10 over
            // 256→192 procs is ceil(90·256/192) = 120 s, plus the
            // reconfiguration cost for 2 units (30 + 2·5 = 40 s).
            assert_eq!(o1.finished, SimTime::from_secs(170));
            assert_eq!(o1.num, 192);
            assert_eq!(r.reconfig.shrinks, 1);
            assert_eq!(r.reconfig.procs_reclaimed, 64);
            assert_eq!(r.reconfig.cost_secs, 40);
            assert_eq!(r.reconfig.grows, 0);
        }

        #[test]
        fn grow_takes_free_procs_and_shortens_runtime() {
            let jobs = vec![JobSpec::batch(1, 0, 64, 100).with_proc_range(64, 128)];
            let r = simulate(
                Machine::bluegene_p(),
                MalleableFifo::new(true),
                EccPolicy::disabled(),
                &jobs,
                &[],
            )
            .unwrap();
            let o = &r.outcomes[0];
            // Grew 64→128 (ceiling-clamped despite 256 free): the 100 s
            // of remaining work halves to 50 s, plus the cost for 2
            // units (30 + 2·5 = 40 s) — a net 10 s win.
            assert_eq!(o.num, 128);
            assert_eq!(o.finished, SimTime::from_secs(90));
            assert_eq!(r.reconfig.grows, 1);
            assert_eq!(r.reconfig.procs_granted, 64);
        }

        #[test]
        fn free_cost_model_resizes_without_penalty() {
            let jobs = vec![JobSpec::batch(1, 0, 64, 100).with_proc_range(64, 128)];
            let mut engine = Engine::new(
                Machine::bluegene_p(),
                MalleableFifo::new(true),
                EccPolicy::disabled(),
            );
            engine.set_reconfig_cost(ReconfigCost::FREE);
            engine.load(&jobs, &[]).unwrap();
            let r = engine.run().unwrap();
            assert_eq!(r.outcomes[0].num, 128);
            // Free resize: the work-conserving halving is all there is.
            assert_eq!(r.outcomes[0].finished, SimTime::from_secs(50));
            assert_eq!(r.reconfig.cost_secs, 0);
        }

        #[test]
        fn rigid_jobs_expose_no_bounds_and_refuse_resizes() {
            // The grow-capable scheduler on an all-rigid workload must
            // reproduce the plain-FIFO run exactly.
            let jobs = vec![
                JobSpec::batch(1, 0, 256, 100),
                JobSpec::batch(2, 10, 128, 100),
            ];
            let mal = simulate(
                Machine::bluegene_p(),
                MalleableFifo::new(true),
                EccPolicy::disabled(),
                &jobs,
                &[],
            )
            .unwrap();
            assert_eq!(mal.reconfig.total(), 0);
            let base = run_jobs(&jobs, &[], EccPolicy::disabled());
            for (a, b) in mal.outcomes.iter().zip(&base.outcomes) {
                assert_eq!((a.id, a.started, a.finished, a.num), (b.id, b.started, b.finished, b.num));
            }
        }

        #[test]
        fn shrink_respects_floor_and_unit() {
            // Floor 96 rounds up to 96 (unit 32); alloc 128 → at most 32
            // reclaimable however much is asked for.
            let jobs = vec![
                JobSpec::batch(1, 0, 128, 100).with_proc_range(96, 128),
                JobSpec::batch(2, 10, 320, 50),
            ];
            let r = simulate(
                Machine::bluegene_p(),
                MalleableFifo::new(false),
                EccPolicy::disabled(),
                &jobs,
                &[],
            )
            .unwrap();
            assert_eq!(r.reconfig.procs_reclaimed, 32);
            let o1 = r.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
            assert_eq!(o1.num, 96, "never shrunk below the range floor");
            let o2 = r.outcomes.iter().find(|o| o.id == JobId(2)).unwrap();
            assert_eq!(
                o2.started,
                o1.finished,
                "head still had to wait for the full machine"
            );
        }

        #[test]
        fn streamed_malleable_run_matches_materialized() {
            let jobs = vec![
                JobSpec::batch(1, 0, 256, 100).with_proc_range(128, 320),
                JobSpec::batch(2, 10, 128, 100),
                JobSpec::batch(3, 20, 64, 30).with_proc_range(32, 96),
            ];
            let mat = simulate(
                Machine::bluegene_p(),
                MalleableFifo::new(true),
                EccPolicy::disabled(),
                &jobs,
                &[],
            )
            .unwrap();
            let engine = Engine::new(
                Machine::bluegene_p(),
                MalleableFifo::new(true),
                EccPolicy::disabled(),
            );
            let st = engine.run_streaming(SliceSource::new(&jobs, &[])).unwrap();
            assert_eq!(mat.reconfig, st.reconfig);
            assert_eq!(mat.outcomes.len(), st.outcomes.len());
            for (a, b) in mat.outcomes.iter().zip(&st.outcomes) {
                assert_eq!((a.id, a.started, a.finished, a.num), (b.id, b.started, b.finished, b.num));
            }
        }
    }

    #[test]
    fn engine_stats_serde_round_trips() {
        let s = EngineStats {
            events: 1,
            cycles: 2,
            events_coalesced: 3,
            queue_ops: 4,
            peak_queue_len: 5,
            engine_nanos: 6,
            peak_live_jobs: 7,
            peak_wait_views: 7,
            jobs_reclaimed: 8,
        };
        let text = serde_json::to_string(&s).unwrap();
        let back: EngineStats = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn engine_stats_serde_ignores_unknown_fields() {
        let text = r#"{
            "events": 10, "cycles": 5, "events_coalesced": 0,
            "queue_ops": 20, "peak_queue_len": 3, "engine_nanos": 0,
            "future_field": "ignored"
        }"#;
        let s: EngineStats = serde_json::from_str(text).unwrap();
        assert_eq!(s.events, 10);
        assert_eq!(s.peak_queue_len, 3);
    }
}
