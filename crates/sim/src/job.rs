//! Job descriptions and lifecycle state.
//!
//! A [`JobSpec`] is the immutable description of a job as it appears in a
//! workload trace (CWF/SWF). The engine tracks the mutable lifecycle in a
//! [`JobRecord`]. Runtime elasticity (Elastic Control Commands) mutates the
//! *record*, never the spec, so a simulation can always be replayed from
//! the same workload.

use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique job identifier (the SWF "Job ID" field).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Whether a job is a flexible batch job or a rigid dedicated/interactive
/// job with a user-requested start time (paper §I-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobClass {
    /// Scheduled by the scheduler at an optimal time.
    Batch,
    /// Must be triggered at (or as soon after as capacity allows) the
    /// user-requested start time.
    Dedicated {
        /// CWF field 19, "Requested Start Time".
        requested_start: SimTime,
    },
}

impl JobClass {
    /// True for dedicated/interactive jobs.
    #[inline]
    pub fn is_dedicated(&self) -> bool {
        matches!(self, JobClass::Dedicated { .. })
    }

    /// The requested start time, if dedicated.
    #[inline]
    pub fn requested_start(&self) -> Option<SimTime> {
        match self {
            JobClass::Batch => None,
            JobClass::Dedicated { requested_start } => Some(*requested_start),
        }
    }
}

/// Immutable description of one job in a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique identifier.
    pub id: JobId,
    /// Arrival (submit) time.
    pub submit: SimTime,
    /// Number of processors requested (`num` in the paper's notation) —
    /// the *preferred* width in the proc-range model. On a
    /// BlueGene/P-style machine this is a multiple of the allocation
    /// unit; the machine model enforces it.
    pub num: u32,
    /// User-estimated execution time (`dur`). Also the initial kill-by
    /// horizon; ECCs modify the *effective* duration in the job record.
    pub dur: Duration,
    /// Actual execution time. For synthetic workloads this equals `dur`
    /// unless an over-estimation factor was applied at generation time.
    pub actual: Duration,
    /// Batch or dedicated.
    pub class: JobClass,
    /// Minimum acceptable processor count for a malleable job (proc-range
    /// model: `min_procs ≤ num ≤ max_procs`). `0` means unset — the job
    /// is rigid below its preferred width. `#[serde(default)]` keeps
    /// specs serialized before the proc-range model loading cleanly.
    #[serde(default)]
    pub min_procs: u32,
    /// Maximum useful processor count for a malleable job. `0` means
    /// unset — the job cannot grow past its preferred width.
    #[serde(default)]
    pub max_procs: u32,
}

impl JobSpec {
    /// Convenience constructor for a batch job whose actual runtime equals
    /// its estimate.
    pub fn batch(id: u64, submit: u64, num: u32, dur: u64) -> Self {
        JobSpec {
            id: JobId(id),
            submit: SimTime::from_secs(submit),
            num,
            dur: Duration::from_secs(dur),
            actual: Duration::from_secs(dur),
            class: JobClass::Batch,
            min_procs: 0,
            max_procs: 0,
        }
    }

    /// Convenience constructor for a dedicated job.
    pub fn dedicated(id: u64, submit: u64, num: u32, dur: u64, requested_start: u64) -> Self {
        JobSpec {
            id: JobId(id),
            submit: SimTime::from_secs(submit),
            num,
            dur: Duration::from_secs(dur),
            actual: Duration::from_secs(dur),
            class: JobClass::Dedicated {
                requested_start: SimTime::from_secs(requested_start),
            },
            min_procs: 0,
            max_procs: 0,
        }
    }

    /// Attach a proc range (`min ≤ num ≤ max`), making the job malleable
    /// whenever the normalized range is non-degenerate. Pass `0` for
    /// either bound to leave it unset.
    pub fn with_proc_range(mut self, min: u32, max: u32) -> Self {
        self.min_procs = min;
        self.max_procs = max;
        self
    }

    /// The normalized proc range `(min, max)`: unset bounds collapse to
    /// the preferred width, a `min` above `num` clamps down to it and a
    /// `max` below `num` clamps up, so `min ≤ num ≤ max` always holds.
    pub fn proc_range(&self) -> (u32, u32) {
        let min = if self.min_procs == 0 {
            self.num
        } else {
            self.min_procs.min(self.num)
        };
        let max = if self.max_procs == 0 {
            self.num
        } else {
            self.max_procs.max(self.num)
        };
        (min, max)
    }

    /// True when the normalized proc range admits more than one width —
    /// the scheduler may grow or shrink this job at runtime. `min == max`
    /// is the degenerate fixed case.
    pub fn is_malleable(&self) -> bool {
        let (min, max) = self.proc_range();
        min < max
    }

    /// The moment from which this job is *eligible* to run: its submit
    /// time for batch jobs, the later of submit and requested start for
    /// dedicated jobs.
    pub fn eligible_at(&self) -> SimTime {
        match self.class {
            JobClass::Batch => self.submit,
            JobClass::Dedicated { requested_start } => self.submit.max(requested_start),
        }
    }
}

/// Lifecycle state of a job inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // field names are self-describing
pub enum JobState {
    /// Not yet arrived (before its submit event fired).
    Future,
    /// In a waiting queue.
    Waiting,
    /// Running since `started`, will complete at `finish` unless an ECC
    /// moves the kill-by time.
    Running { started: SimTime, finish: SimTime },
    /// Finished.
    Completed { started: SimTime, finished: SimTime },
}

/// Mutable per-job bookkeeping owned by the engine.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The immutable trace-level description.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Effective user-estimated duration: `spec.dur` plus/minus any time
    /// ECCs applied while the job was queued.
    pub est_dur: Duration,
    /// Effective actual runtime (tracks `est_dur` for synthetic traces).
    pub actual_dur: Duration,
    /// Current processor allocation (differs from `spec.num` only when
    /// processor-dimension elasticity, EP/RP, is enabled).
    pub alloc: u32,
    /// Number of ECCs applied to this job so far.
    pub ecc_count: u32,
    /// Processors currently held *above* the preferred width through
    /// scheduler-initiated malleable grows (grows add, shrinks subtract,
    /// saturating at zero). Kept separate from ECC-driven allocation
    /// changes so wait attribution can charge them to different buckets.
    pub mal_gain: u32,
    /// Epoch counter used to invalidate stale completion events after an
    /// ECC reschedules the kill-by time.
    pub completion_epoch: u64,
    /// Position of this job's entry in the engine's waiting-jobs snapshot
    /// buffer, maintained by every snapshot compaction. Meaningful only
    /// while `state` is [`JobState::Waiting`]; lets a queued ECC edit its
    /// view in O(1) instead of scanning the buffer.
    pub(crate) wait_pos: u32,
}

impl JobRecord {
    /// Fresh record for a job that has not yet arrived.
    pub fn new(spec: JobSpec) -> Self {
        let est_dur = spec.dur;
        let actual_dur = spec.actual;
        let alloc = spec.num;
        JobRecord {
            spec,
            state: JobState::Future,
            est_dur,
            actual_dur,
            alloc,
            ecc_count: 0,
            mal_gain: 0,
            completion_epoch: 0,
            wait_pos: u32::MAX,
        }
    }

    /// True if the job is currently running.
    #[inline]
    pub fn is_running(&self) -> bool {
        matches!(self.state, JobState::Running { .. })
    }

    /// True if the job finished.
    #[inline]
    pub fn is_completed(&self) -> bool {
        matches!(self.state, JobState::Completed { .. })
    }

    /// Scheduled completion time, if running.
    #[inline]
    pub fn finish_time(&self) -> Option<SimTime> {
        match self.state {
            JobState::Running { finish, .. } => Some(finish),
            _ => None,
        }
    }

    /// Residual (remaining) execution time at `now`, if running
    /// (`res` in the paper's notation).
    #[inline]
    pub fn residual(&self, now: SimTime) -> Option<Duration> {
        self.finish_time().map(|f| f.saturating_since(now))
    }
}

/// Final, immutable outcome of one job, for metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Which job.
    pub id: JobId,
    /// Trace arrival time.
    pub submit: SimTime,
    /// For dedicated jobs, the requested start; `None` for batch.
    pub requested_start: Option<SimTime>,
    /// When the scheduler activated the job.
    pub started: SimTime,
    /// When it completed.
    pub finished: SimTime,
    /// Processors actually held at completion.
    pub num: u32,
    /// Effective runtime (finished - started).
    pub runtime: Duration,
    /// Waiting time: `started - submit` for batch jobs, and
    /// `started - max(submit, requested_start)` for dedicated jobs.
    pub wait: Duration,
    /// Decomposition of `wait` into blocking causes (`None` unless the
    /// engine ran with attribution enabled — see
    /// `Engine::enable_attribution`). The cause buckets sum to `wait`
    /// exactly.
    #[serde(default)]
    pub attribution: Option<crate::attribution::WaitAttribution>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_constructor_defaults() {
        let j = JobSpec::batch(1, 10, 64, 300);
        assert_eq!(j.id, JobId(1));
        assert_eq!(j.num, 64);
        assert_eq!(j.dur, j.actual);
        assert!(!j.class.is_dedicated());
        assert_eq!(j.eligible_at(), SimTime::from_secs(10));
    }

    #[test]
    fn dedicated_eligibility_is_later_of_submit_and_start() {
        let j = JobSpec::dedicated(2, 10, 64, 300, 100);
        assert_eq!(j.eligible_at(), SimTime::from_secs(100));
        let early = JobSpec::dedicated(3, 200, 64, 300, 100);
        assert_eq!(early.eligible_at(), SimTime::from_secs(200));
        assert_eq!(j.class.requested_start(), Some(SimTime::from_secs(100)));
    }

    #[test]
    fn record_residual_tracks_finish() {
        let mut r = JobRecord::new(JobSpec::batch(1, 0, 32, 100));
        assert_eq!(r.residual(SimTime::ZERO), None);
        r.state = JobState::Running {
            started: SimTime::from_secs(5),
            finish: SimTime::from_secs(105),
        };
        assert_eq!(
            r.residual(SimTime::from_secs(50)),
            Some(Duration::from_secs(55))
        );
        assert_eq!(
            r.residual(SimTime::from_secs(200)),
            Some(Duration::ZERO),
            "residual saturates at zero past the finish time"
        );
        assert!(r.is_running());
        assert!(!r.is_completed());
    }

    #[test]
    fn proc_range_normalizes_and_classifies() {
        let fixed = JobSpec::batch(1, 0, 64, 100);
        assert_eq!(fixed.proc_range(), (64, 64));
        assert!(!fixed.is_malleable());
        // Degenerate explicit range: min == num == max.
        let degenerate = JobSpec::batch(2, 0, 64, 100).with_proc_range(64, 64);
        assert!(!degenerate.is_malleable());
        let mal = JobSpec::batch(3, 0, 64, 100).with_proc_range(32, 128);
        assert_eq!(mal.proc_range(), (32, 128));
        assert!(mal.is_malleable());
        // Unset bounds collapse to the preferred width.
        let grow_only = JobSpec::batch(4, 0, 64, 100).with_proc_range(0, 128);
        assert_eq!(grow_only.proc_range(), (64, 128));
        assert!(grow_only.is_malleable());
        // Inverted bounds clamp to num rather than crossing it.
        let weird = JobSpec::batch(5, 0, 64, 100).with_proc_range(96, 32);
        assert_eq!(weird.proc_range(), (64, 64));
        assert!(!weird.is_malleable());
    }

    #[test]
    fn spec_serde_round_trips_and_defaults_unset_range() {
        let mal = JobSpec::batch(2, 0, 64, 100).with_proc_range(32, 128);
        let text = serde_json::to_string(&mal).unwrap();
        assert!(text.contains("min_procs"));
        let back: JobSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, mal);
        // A spec serialized before the proc-range model existed (no
        // min/max fields) loads as a rigid job.
        let fixed = JobSpec::batch(1, 0, 64, 100);
        let mut text = serde_json::to_string(&fixed).unwrap();
        text = text
            .replace(",\"min_procs\":0", "")
            .replace(",\"max_procs\":0", "");
        assert!(!text.contains("min_procs"), "rewrite failed: {text}");
        let back: JobSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, fixed);
        assert!(!back.is_malleable());
    }

    #[test]
    fn new_record_copies_spec_dimensions() {
        let r = JobRecord::new(JobSpec::batch(7, 0, 96, 1234));
        assert_eq!(r.est_dur, Duration::from_secs(1234));
        assert_eq!(r.actual_dur, Duration::from_secs(1234));
        assert_eq!(r.alloc, 96);
        assert_eq!(r.ecc_count, 0);
        assert_eq!(r.state, JobState::Future);
    }
}
