//! Elastic Control Commands (paper §III-C, §IV-C).
//!
//! ECCs are explicit, user-issued commands that change a previously
//! submitted job's resource requirements *at runtime* — the paper's core
//! notion of runtime elasticity. CWF fields 20–21 encode them: `ET`/`RT`
//! extend/reduce execution time, `EP`/`RP` extend/reduce processor counts
//! (the paper's future-work resource dimension, which this library also
//! implements).

use crate::job::JobId;
use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of elasticity request (CWF "Request Type", field 20).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccKind {
    /// `ET`: extend execution time.
    ExtendTime,
    /// `RT`: reduce execution time.
    ReduceTime,
    /// `EP`: extend processor allocation (resource-dimension elasticity,
    /// paper §VI future work).
    ExtendProcs,
    /// `RP`: reduce processor allocation.
    ReduceProcs,
}

impl EccKind {
    /// The CWF field-20 code for this kind.
    pub fn code(self) -> &'static str {
        match self {
            EccKind::ExtendTime => "ET",
            EccKind::ReduceTime => "RT",
            EccKind::ExtendProcs => "EP",
            EccKind::ReduceProcs => "RP",
        }
    }

    /// Parse a CWF field-20 code (`S` is a submission, not an ECC).
    pub fn from_code(code: &str) -> Option<EccKind> {
        match code {
            "ET" => Some(EccKind::ExtendTime),
            "RT" => Some(EccKind::ReduceTime),
            "EP" => Some(EccKind::ExtendProcs),
            "RP" => Some(EccKind::ReduceProcs),
            _ => None,
        }
    }

    /// Whether this command operates on the time dimension.
    pub fn is_time(self) -> bool {
        matches!(self, EccKind::ExtendTime | EccKind::ReduceTime)
    }
}

impl fmt::Display for EccKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One Elastic Control Command in a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccSpec {
    /// The job this command targets (same ID as a previous `S` record).
    pub job: JobId,
    /// When the user issues the command.
    pub issue_at: SimTime,
    /// What is requested.
    pub kind: EccKind,
    /// Extension/reduction amount (CWF field 21): seconds for `ET`/`RT`,
    /// processors for `EP`/`RP`.
    pub amount: u64,
}

impl EccSpec {
    /// A time-extension command.
    pub fn extend_time(job: JobId, issue_at: SimTime, secs: u64) -> Self {
        EccSpec {
            job,
            issue_at,
            kind: EccKind::ExtendTime,
            amount: secs,
        }
    }

    /// A time-reduction command.
    pub fn reduce_time(job: JobId, issue_at: SimTime, secs: u64) -> Self {
        EccSpec {
            job,
            issue_at,
            kind: EccKind::ReduceTime,
            amount: secs,
        }
    }

    /// The amount as a [`Duration`] (only meaningful for time commands).
    pub fn time_amount(&self) -> Duration {
        Duration::from_secs(self.amount)
    }
}

/// How the engine handles ECCs (the "-E" suffix in Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccPolicy {
    /// Process time-dimension commands (ET/RT). When false, the engine
    /// drops every ECC — this is how non-`-E` algorithms behave.
    pub time_elasticity: bool,
    /// Also process processor-dimension commands (EP/RP) — the paper's
    /// future-work extension.
    pub resource_elasticity: bool,
    /// Maximum number of ECCs honoured per job (paper: "a maximum count
    /// on number of ECCs can be imposed"); `u32::MAX` = unlimited.
    pub max_per_job: u32,
}

impl EccPolicy {
    /// Ignore all ECCs (plain EASY/LOS/Delayed-LOS/Hybrid-LOS).
    pub fn disabled() -> Self {
        EccPolicy {
            time_elasticity: false,
            resource_elasticity: false,
            max_per_job: 0,
        }
    }

    /// Time-dimension elasticity only (the paper's `-E` algorithms).
    pub fn time_only() -> Self {
        EccPolicy {
            time_elasticity: true,
            resource_elasticity: false,
            max_per_job: u32::MAX,
        }
    }

    /// Time and processor elasticity (paper §VI future work).
    pub fn with_resource_elasticity() -> Self {
        EccPolicy {
            time_elasticity: true,
            resource_elasticity: true,
            max_per_job: u32::MAX,
        }
    }

    /// Cap the number of commands honoured per job.
    pub fn max_per_job(mut self, n: u32) -> Self {
        self.max_per_job = n;
        self
    }
}

impl Default for EccPolicy {
    fn default() -> Self {
        EccPolicy::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for k in [
            EccKind::ExtendTime,
            EccKind::ReduceTime,
            EccKind::ExtendProcs,
            EccKind::ReduceProcs,
        ] {
            assert_eq!(EccKind::from_code(k.code()), Some(k));
        }
        assert_eq!(EccKind::from_code("S"), None);
        assert_eq!(EccKind::from_code("XX"), None);
    }

    #[test]
    fn time_kinds_classified() {
        assert!(EccKind::ExtendTime.is_time());
        assert!(EccKind::ReduceTime.is_time());
        assert!(!EccKind::ExtendProcs.is_time());
        assert!(!EccKind::ReduceProcs.is_time());
    }

    #[test]
    fn policy_presets() {
        let off = EccPolicy::disabled();
        assert!(!off.time_elasticity && !off.resource_elasticity);
        let t = EccPolicy::time_only();
        assert!(t.time_elasticity && !t.resource_elasticity);
        let full = EccPolicy::with_resource_elasticity().max_per_job(3);
        assert!(full.time_elasticity && full.resource_elasticity);
        assert_eq!(full.max_per_job, 3);
    }

    #[test]
    fn constructors_fill_fields() {
        let e = EccSpec::extend_time(JobId(9), SimTime::from_secs(100), 60);
        assert_eq!(e.kind, EccKind::ExtendTime);
        assert_eq!(e.time_amount(), Duration::from_secs(60));
        let r = EccSpec::reduce_time(JobId(9), SimTime::from_secs(100), 60);
        assert_eq!(r.kind, EccKind::ReduceTime);
    }
}
