//! The discrete-event queue.
//!
//! Events are processed in non-decreasing time order; events at the same
//! instant are processed in insertion order (FIFO), which makes
//! simulations fully deterministic.

use crate::ecc::EccSpec;
use crate::job::JobId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum Event {
    /// A job arrived (its submit time was reached).
    Arrival(JobId),
    /// A running job reached its kill-by time. `epoch` invalidates
    /// completions that were rescheduled by an ECC.
    Completion { job: JobId, epoch: u64 },
    /// An Elastic Control Command was issued.
    Ecc(EccSpec),
    /// A scheduler wakeup with no state change of its own (used to force a
    /// scheduling cycle at a dedicated job's requested start time).
    Wakeup,
}

#[derive(Debug)]
struct Entry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered, insertion-stable event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), Event::Wakeup);
        q.push(t(10), Event::Arrival(JobId(1)));
        q.push(t(20), Event::Arrival(JobId(2)));
        assert_eq!(q.pop().unwrap().0, t(10));
        assert_eq!(q.pop().unwrap().0, t(20));
        assert_eq!(q.pop().unwrap().0, t(30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for id in 0..100u64 {
            q.push(t(5), Event::Arrival(JobId(id)));
        }
        for id in 0..100u64 {
            match q.pop().unwrap().1 {
                Event::Arrival(j) => assert_eq!(j, JobId(id)),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(42), Event::Wakeup);
        assert_eq!(q.peek_time(), Some(t(42)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(10), Event::Wakeup);
        q.push(t(5), Event::Wakeup);
        assert_eq!(q.pop().unwrap().0, t(5));
        q.push(t(7), Event::Wakeup);
        q.push(t(3), Event::Wakeup);
        assert_eq!(q.pop().unwrap().0, t(3));
        assert_eq!(q.pop().unwrap().0, t(7));
        assert_eq!(q.pop().unwrap().0, t(10));
    }
}
