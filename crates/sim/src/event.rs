//! The discrete-event queue.
//!
//! Events are processed in non-decreasing time order; events at the same
//! instant are processed in insertion order (FIFO), which makes
//! simulations fully deterministic.
//!
//! # Implementation
//!
//! [`EventQueue`] is a **calendar queue** (Brown 1988): an array of
//! `2^k` buckets, each a short time-sorted run, where an event at time
//! `t` lives in bucket `(t / width) mod 2^k`. The queue tracks the
//! current *day* (`t / width` of the earliest pending event) and pops by
//! scanning forward from it; one bucket holds at most a handful of
//! events when the width matches the event density, so both `push` and
//! `pop` are O(1) amortized — versus the `O(log n)` sift of the previous
//! `BinaryHeap`. Buckets are **lazily resized**: when the population
//! outgrows (or undershoots) the bucket count, the next operation
//! rebuilds the calendar with a bucket count of about twice the
//! population and a width equal to the mean gap between pending events.
//!
//! Same-instant FIFO order is preserved *by construction*: an event is
//! inserted after every event with an equal-or-earlier time in its
//! bucket, so no insertion sequence number (or comparison on one) is
//! needed. All events at one instant land in one bucket, contiguously,
//! which is what makes [`EventQueue::drain_next_instant`] — the engine's
//! cycle-coalescing primitive — a straight front-drain.
//!
//! The previous heap-based queue survives as [`reference::HeapEventQueue`]
//! behind the `reference-kernels` feature, as a differential-testing
//! oracle (see `tests/event_queue_differential.rs`).

use crate::ecc::EccSpec;
use crate::job::JobId;
use crate::time::SimTime;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum Event {
    /// A job arrived (its submit time was reached).
    Arrival(JobId),
    /// A running job reached its kill-by time. `epoch` invalidates
    /// completions that were rescheduled by an ECC.
    Completion { job: JobId, epoch: u64 },
    /// An Elastic Control Command was issued.
    Ecc(EccSpec),
    /// A scheduler wakeup with no state change of its own (used to force a
    /// scheduling cycle at a dedicated job's requested start time).
    Wakeup,
}

#[derive(Debug, Clone)]
struct Entry {
    at: SimTime,
    event: Event,
}

/// A slab slot: one pending event plus the intra-bucket link.
#[derive(Debug, Clone)]
struct Slot {
    at: SimTime,
    event: Event,
    /// Next slot in the same bucket (time-sorted), or [`NIL`]. Doubles
    /// as the free-list link when the slot is vacant.
    next: u32,
}

/// Null slot index for the intrusive lists.
const NIL: u32 = u32::MAX;

/// An empty bucket: no head, no tail.
const EMPTY: (u32, u32) = (NIL, NIL);

/// Smallest calendar size; also the initial size.
const MIN_BUCKETS: usize = 16;

/// A time-ordered, insertion-stable event queue (calendar queue).
#[derive(Debug)]
pub struct EventQueue {
    /// `(head, tail)` slot indices per bucket ([`EMPTY`] when vacant);
    /// `buckets.len()` is always a power of two. Buckets are 8-byte
    /// index pairs into the shared `slots` slab rather than owning
    /// containers: the day scan walks a dense array, and a run costs two
    /// slab allocations instead of one per touched bucket.
    buckets: Vec<(u32, u32)>,
    /// The slab. Vacant slots are chained on `free_head`.
    slots: Vec<Slot>,
    /// Head of the vacant-slot free list, or [`NIL`].
    free_head: u32,
    /// log₂ of the bucket width in seconds. A power-of-two width turns
    /// the day computation `at / width` — on every push, pop, and day
    /// scanned — into a shift; the u64 division it replaces was the
    /// single hottest instruction in the queue.
    shift: u32,
    /// Current absolute day number: `at >> shift` of the earliest pending
    /// event is never below this.
    day: u64,
    len: usize,
    pushes: u64,
    pops: u64,
    peak_len: usize,
    /// Rebuild scratch, reused across rebuilds so draining the calendar
    /// into time order costs no allocation after the first rebuild.
    scratch: Vec<Entry>,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            buckets: vec![EMPTY; MIN_BUCKETS],
            slots: Vec::new(),
            free_head: NIL,
            shift: 0,
            day: 0,
            len: 0,
            pushes: 0,
            pops: 0,
            peak_len: 0,
            scratch: Vec::new(),
        }
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size the slot slab for `additional` more pending events, so
    /// a bulk load costs one slab growth instead of one per doubling.
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
    }

    #[inline]
    fn mask(&self) -> u64 {
        (self.buckets.len() - 1) as u64
    }

    #[inline]
    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.0 >> self.shift) & self.mask()) as usize
    }

    /// Take a slot from the free list, or grow the slab.
    #[inline]
    fn alloc_slot(&mut self, at: SimTime, event: Event, next: u32) -> u32 {
        if self.free_head != NIL {
            let i = self.free_head;
            let slot = &mut self.slots[i as usize];
            self.free_head = slot.next;
            slot.at = at;
            slot.event = event;
            slot.next = next;
            i
        } else {
            let i = self.slots.len() as u32;
            self.slots.push(Slot { at, event, next });
            i
        }
    }

    /// Return a slot to the free list. The stale payload stays in place;
    /// [`Event`] owns no heap, so nothing leaks.
    #[inline]
    fn free_slot(&mut self, i: u32) {
        self.slots[i as usize].next = self.free_head;
        self.free_head = i;
    }

    /// Schedule `event` at time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        self.pushes += 1;
        let at_day = at.0 >> self.shift;
        if self.len == 0 || at_day < self.day {
            // Keep the invariant day ≤ earliest-pending-day so the pop
            // scan never walks past an event (pushes "into the past" are
            // legal for the API even though the engine never does them).
            self.day = at_day;
        }
        let idx = self.bucket_of(at);
        // Insert after every equal-or-earlier event: time order within
        // the bucket, FIFO within an instant. In-order pushes (the
        // common case) hit the tail, so this is an O(1) append.
        let (head, tail) = self.buckets[idx];
        if head == NIL {
            let s = self.alloc_slot(at, event, NIL);
            self.buckets[idx] = (s, s);
        } else if self.slots[tail as usize].at <= at {
            let s = self.alloc_slot(at, event, NIL);
            self.slots[tail as usize].next = s;
            self.buckets[idx].1 = s;
        } else if self.slots[head as usize].at > at {
            let s = self.alloc_slot(at, event, head);
            self.buckets[idx].0 = s;
        } else {
            // Interior insert: walk to the last equal-or-earlier slot.
            // Buckets hold ~2 events at the calendar's design density,
            // so the walk is short.
            let mut prev = head;
            loop {
                let nxt = self.slots[prev as usize].next;
                if nxt == NIL || self.slots[nxt as usize].at > at {
                    break;
                }
                prev = nxt;
            }
            let s = self.alloc_slot(at, event, self.slots[prev as usize].next);
            self.slots[prev as usize].next = s;
        }
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
        if self.len > 2 * self.buckets.len() {
            self.rebuild();
        }
    }

    /// Advance `day` to the day of the earliest pending event and return
    /// that event's time. O(1) amortized: a full-calendar scan only
    /// happens when a whole "year" is empty, and the direct-search
    /// fallback then jumps straight to the right day.
    fn locate_next(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len();
        let mask = self.mask();
        let mut d = self.day;
        for _ in 0..nb {
            let (head, _) = self.buckets[(d & mask) as usize];
            if head != NIL {
                let at = self.slots[head as usize].at;
                if at.0 >> self.shift == d {
                    self.day = d;
                    return Some(at);
                }
            }
            d = d.saturating_add(1);
        }
        // Sparse year: no event within one calendar revolution. Each
        // bucket head is that bucket's minimum, so the global minimum is
        // the least head.
        let at = self
            .buckets
            .iter()
            .filter(|&&(head, _)| head != NIL)
            .map(|&(head, _)| self.slots[head as usize].at)
            .min()
            .expect("len > 0 but no bucket head");
        self.day = at.0 >> self.shift;
        Some(at)
    }

    /// Unlink and free the head slot of bucket `idx`, returning its event.
    #[inline]
    fn pop_head(&mut self, idx: usize) -> Event {
        let (head, tail) = self.buckets[idx];
        debug_assert_ne!(head, NIL, "located bucket empty");
        let next = self.slots[head as usize].next;
        let event = std::mem::replace(&mut self.slots[head as usize].event, Event::Wakeup);
        self.buckets[idx] = if next == NIL { EMPTY } else { (next, tail) };
        self.free_slot(head);
        self.len -= 1;
        self.pops += 1;
        event
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let at = self.locate_next()?;
        let idx = self.bucket_of(at);
        debug_assert_eq!(self.slots[self.buckets[idx].0 as usize].at, at);
        let event = self.pop_head(idx);
        self.maybe_shrink();
        Some((at, event))
    }

    /// Remove every event at the earliest pending instant, appending them
    /// to `out` in insertion order, and return that instant. This is the
    /// engine's cycle-coalescing primitive: all same-instant events share
    /// a bucket and sit contiguously at its front, so the drain is a
    /// straight run of head pops with no re-peeking.
    pub fn drain_next_instant(&mut self, out: &mut Vec<Event>) -> Option<SimTime> {
        let at = self.locate_next()?;
        let idx = self.bucket_of(at);
        loop {
            let (head, _) = self.buckets[idx];
            if head == NIL || self.slots[head as usize].at != at {
                break;
            }
            out.push(self.pop_head(idx));
        }
        self.maybe_shrink();
        Some(at)
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.locate_next()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total pushes + pops over this queue's lifetime.
    pub fn ops(&self) -> u64 {
        self.pushes + self.pops
    }

    /// Largest number of simultaneously pending events observed.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    fn maybe_shrink(&mut self) {
        if self.buckets.len() > MIN_BUCKETS && self.len * 8 < self.buckets.len() {
            self.rebuild();
        }
    }

    /// Resize the calendar to match the current population: bucket count
    /// ≈ len (next power of two), width = mean gap between pending
    /// events. Far-future outliers widen the width, keeping one calendar
    /// revolution spanning all pending events.
    fn rebuild(&mut self) {
        let mut entries = std::mem::take(&mut self.scratch);
        entries.clear();
        entries.reserve(self.len);
        for bi in 0..self.buckets.len() {
            let (mut cur, _) = self.buckets[bi];
            while cur != NIL {
                let slot = &mut self.slots[cur as usize];
                entries.push(Entry {
                    at: slot.at,
                    event: std::mem::replace(&mut slot.event, Event::Wakeup),
                });
                cur = slot.next;
            }
            self.buckets[bi] = EMPTY;
        }
        // The whole slab is vacant now; drop the free list and refill
        // from the bottom so redistribution is a straight append.
        self.slots.clear();
        self.free_head = NIL;
        // Stable: equal instants always share a bucket in FIFO order, so
        // the sort preserves per-instant insertion order globally.
        entries.sort_by_key(|e| e.at);
        // Size for 2× the current population: overshooting halves the
        // number of grow rebuilds on a filling queue (each rebuild is a
        // full drain + sort), and the 8× shrink trigger gives a draining
        // queue the same hysteresis on the way down. Buckets are bare
        // index pairs, so a resize moves no per-bucket buffers.
        let nb = (self.len * 2).next_power_of_two().clamp(MIN_BUCKETS, 1 << 22);
        self.buckets.clear();
        self.buckets.resize(nb, EMPTY);
        if let (Some(first), Some(last)) = (entries.first(), entries.last()) {
            let span = last.at.0 - first.at.0;
            // Mean gap, rounded up to a power of two so the day math is a
            // shift. At most 2× the ideal width: ~2 events per bucket.
            let width = (span / self.len as u64).max(1).next_power_of_two();
            self.shift = width.trailing_zeros();
            self.day = first.at.0 >> self.shift;
        } else {
            self.shift = 0;
            self.day = 0;
        }
        for entry in entries.drain(..) {
            let idx = self.bucket_of(entry.at);
            // Entries arrive in global time order, so appending at each
            // bucket's tail keeps every bucket sorted.
            let s = self.slots.len() as u32;
            self.slots.push(Slot {
                at: entry.at,
                event: entry.event,
                next: NIL,
            });
            let (head, tail) = self.buckets[idx];
            if head == NIL {
                self.buckets[idx] = (s, s);
            } else {
                self.slots[tail as usize].next = s;
                self.buckets[idx].1 = s;
            }
        }
        self.scratch = entries;
    }
}

/// The pre-calendar heap-based queue, kept as a differential-testing
/// oracle for the calendar queue (enabled in unit tests and behind the
/// `reference-kernels` feature for integration tests and benches).
#[cfg(any(test, feature = "reference-kernels"))]
pub mod reference {
    use super::Event;
    use crate::time::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(Debug)]
    struct Entry {
        at: SimTime,
        seq: u64,
        event: Event,
    }

    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for Entry {}

    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we want the earliest
            // first; `seq` restores same-instant insertion order.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    /// A time-ordered, insertion-stable event queue over a binary heap.
    #[derive(Debug, Default)]
    pub struct HeapEventQueue {
        heap: BinaryHeap<Entry>,
        next_seq: u64,
    }

    impl HeapEventQueue {
        /// An empty queue.
        pub fn new() -> Self {
            Self::default()
        }

        /// Schedule `event` at time `at`.
        pub fn push(&mut self, at: SimTime, event: Event) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, event });
        }

        /// Remove and return the earliest event.
        pub fn pop(&mut self) -> Option<(SimTime, Event)> {
            self.heap.pop().map(|e| (e.at, e.event))
        }

        /// Remove every event at the earliest instant into `out`,
        /// returning that instant (mirrors
        /// [`super::EventQueue::drain_next_instant`]).
        pub fn drain_next_instant(&mut self, out: &mut Vec<Event>) -> Option<SimTime> {
            let at = self.peek_time()?;
            while self.heap.peek().is_some_and(|e| e.at == at) {
                out.push(self.heap.pop().expect("peeked").event);
            }
            Some(at)
        }

        /// Time of the earliest pending event.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.at)
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// True when no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), Event::Wakeup);
        q.push(t(10), Event::Arrival(JobId(1)));
        q.push(t(20), Event::Arrival(JobId(2)));
        assert_eq!(q.pop().unwrap().0, t(10));
        assert_eq!(q.pop().unwrap().0, t(20));
        assert_eq!(q.pop().unwrap().0, t(30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for id in 0..100u64 {
            q.push(t(5), Event::Arrival(JobId(id)));
        }
        for id in 0..100u64 {
            match q.pop().unwrap().1 {
                Event::Arrival(j) => assert_eq!(j, JobId(id)),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(42), Event::Wakeup);
        assert_eq!(q.peek_time(), Some(t(42)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(10), Event::Wakeup);
        q.push(t(5), Event::Wakeup);
        assert_eq!(q.pop().unwrap().0, t(5));
        q.push(t(7), Event::Wakeup);
        q.push(t(3), Event::Wakeup);
        assert_eq!(q.pop().unwrap().0, t(3));
        assert_eq!(q.pop().unwrap().0, t(7));
        assert_eq!(q.pop().unwrap().0, t(10));
    }

    #[test]
    fn push_into_the_past_still_pops_first() {
        let mut q = EventQueue::new();
        q.push(t(100), Event::Wakeup);
        assert_eq!(q.pop().unwrap().0, t(100));
        // The cursor sits at day 100; an earlier push must rewind it.
        q.push(t(4), Event::Arrival(JobId(1)));
        q.push(t(50), Event::Wakeup);
        assert_eq!(q.pop().unwrap().0, t(4));
        assert_eq!(q.pop().unwrap().0, t(50));
    }

    #[test]
    fn growth_past_bucket_count_keeps_order() {
        let mut q = EventQueue::new();
        // 4 × MIN_BUCKETS events force at least one grow rebuild.
        let times: Vec<u64> = (0..64).map(|i| (i * 37) % 97).collect();
        for (i, &s) in times.iter().enumerate() {
            q.push(t(s), Event::Arrival(JobId(i as u64)));
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        for &s in &sorted {
            assert_eq!(q.pop().unwrap().0, t(s));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_outlier_widens_calendar() {
        let mut q = EventQueue::new();
        for i in 0..40u64 {
            q.push(t(i), Event::Arrival(JobId(i)));
        }
        // An outlier ~10^9 seconds out forces a wide calendar on the next
        // rebuild; everything must still drain in order.
        q.push(t(1_000_000_000), Event::Wakeup);
        for i in 40..80u64 {
            q.push(t(i), Event::Arrival(JobId(i)));
        }
        let mut last = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at.as_secs() >= last);
            last = at.as_secs();
        }
        assert_eq!(last, 1_000_000_000);
    }

    #[test]
    fn max_time_sentinel_is_popped_last() {
        let mut q = EventQueue::new();
        q.push(SimTime::MAX, Event::Wakeup);
        q.push(t(1), Event::Arrival(JobId(1)));
        assert_eq!(q.pop().unwrap().0, t(1));
        assert_eq!(q.pop().unwrap().0, SimTime::MAX);
    }

    #[test]
    fn drain_next_instant_takes_whole_burst_in_order() {
        let mut q = EventQueue::new();
        q.push(t(9), Event::Wakeup);
        for id in 0..10u64 {
            q.push(t(5), Event::Arrival(JobId(id)));
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_next_instant(&mut out), Some(t(5)));
        assert_eq!(out.len(), 10);
        for (i, ev) in out.iter().enumerate() {
            assert_eq!(*ev, Event::Arrival(JobId(i as u64)));
        }
        out.clear();
        assert_eq!(q.drain_next_instant(&mut out), Some(t(9)));
        assert_eq!(out, vec![Event::Wakeup]);
        assert_eq!(q.drain_next_instant(&mut out), None);
    }

    #[test]
    fn shrink_after_heavy_drain_keeps_order() {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(t(i * 3), Event::Arrival(JobId(i)));
        }
        // Drain most of the population to force shrink rebuilds.
        for i in 0..995u64 {
            assert_eq!(q.pop().unwrap().0, t(i * 3));
        }
        assert_eq!(q.len(), 5);
        for i in 995..1000u64 {
            assert_eq!(q.pop().unwrap().0, t(i * 3));
        }
    }

    #[test]
    fn op_counters_track_traffic() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(t(i), Event::Wakeup);
        }
        assert_eq!(q.peak_len(), 10);
        while q.pop().is_some() {}
        assert_eq!(q.ops(), 20);
        assert_eq!(q.peak_len(), 10);
    }

    #[test]
    fn matches_reference_heap_on_mixed_traffic() {
        let mut cal = EventQueue::new();
        let mut heap = reference::HeapEventQueue::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut pending = 0u64;
        for i in 0..4000u64 {
            if pending == 0 || step() % 3 != 0 {
                let at = t(step() % 500);
                cal.push(at, Event::Arrival(JobId(i)));
                heap.push(at, Event::Arrival(JobId(i)));
                pending += 1;
            } else {
                assert_eq!(cal.pop(), heap.pop());
                pending -= 1;
            }
        }
        while let Some(expect) = heap.pop() {
            assert_eq!(cal.pop(), Some(expect));
        }
        assert!(cal.is_empty());
    }
}
