//! Reconfiguration-cost model for scheduler-initiated malleability.
//!
//! The paper's elasticity (ECCs) is *user*-issued; the malleable stack
//! layer instead lets the *scheduler* grow and shrink running jobs
//! between their proc-range bounds ([`crate::JobSpec::proc_range`]).
//! Resizes are *work-conserving*: the job's remaining runtime rescales
//! by `old/new` processors (linear speedup within the range), so a
//! shrink stretches the tail and a grow compresses it. Real malleable
//! runtimes additionally pay for every reconfiguration — checkpointing,
//! data redistribution, process (re)spawn — so each engine-applied
//! resize also extends the job's remaining runtime by a
//! [`ReconfigCost`]: a fixed penalty plus a per-unit term scaling with
//! the number of allocation units moved. A zero cost model makes
//! resizes free (useful for upper-bound studies); the default charges
//! 30 s + 5 s per 32-proc node group, in the range malleability studies
//! assume for checkpoint-based reconfiguration.

use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// How much simulated time one grow/shrink costs the resized job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigCost {
    /// Flat penalty per reconfiguration, seconds.
    pub fixed_secs: u64,
    /// Additional penalty per allocation unit moved, seconds.
    pub per_unit_secs: u64,
}

impl ReconfigCost {
    /// Free reconfigurations (upper-bound / ablation studies).
    pub const FREE: ReconfigCost = ReconfigCost {
        fixed_secs: 0,
        per_unit_secs: 0,
    };

    /// The cost charged to a job that moved `delta` processors on a
    /// machine with allocation unit `unit`.
    pub fn charge(&self, delta: u32, unit: u32) -> Duration {
        let units = u64::from(delta / unit.max(1));
        Duration::from_secs(self.fixed_secs + self.per_unit_secs * units)
    }
}

impl Default for ReconfigCost {
    fn default() -> Self {
        ReconfigCost {
            fixed_secs: 30,
            per_unit_secs: 5,
        }
    }
}

/// Cumulative malleable-reconfiguration counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigStats {
    /// Scheduler-initiated grows applied to running jobs.
    #[serde(default)]
    pub grows: u64,
    /// Scheduler-initiated shrinks applied to running jobs.
    #[serde(default)]
    pub shrinks: u64,
    /// Processors granted across all grows.
    #[serde(default)]
    pub procs_granted: u64,
    /// Processors reclaimed across all shrinks.
    #[serde(default)]
    pub procs_reclaimed: u64,
    /// Total reconfiguration cost charged to resized jobs, seconds of
    /// extended remaining runtime.
    #[serde(default)]
    pub cost_secs: u64,
}

impl ReconfigStats {
    /// Total reconfigurations of either direction.
    pub fn total(&self) -> u64 {
        self.grows + self.shrinks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cost_charges_fixed_plus_per_unit() {
        let c = ReconfigCost::default();
        assert_eq!(c.charge(64, 32), Duration::from_secs(30 + 2 * 5));
        assert_eq!(c.charge(32, 32), Duration::from_secs(35));
        assert_eq!(ReconfigCost::FREE.charge(96, 32), Duration::ZERO);
    }

    #[test]
    fn stats_total_and_serde_defaults() {
        let s = ReconfigStats {
            grows: 2,
            shrinks: 3,
            ..Default::default()
        };
        assert_eq!(s.total(), 5);
        // A fixture from before the counters existed deserializes clean.
        let from_empty: ReconfigStats = serde_json::from_str("{}").unwrap();
        assert_eq!(from_empty, ReconfigStats::default());
    }
}
