//! The set of active (running) jobs.
//!
//! This is the paper's list `A = {a_1, …, a_A}`: running jobs (batch and
//! dedicated), maintained sorted by increasing residual execution time
//! `a_1.res ≤ a_2.res ≤ … ≤ a_A.res` — i.e. by scheduled finish time.
//! Every scheduler reads it to compute shadow/freeze times.

use crate::job::JobId;
use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// A running job as seen by schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunningJob {
    /// Which job.
    pub id: JobId,
    /// Processors it holds (`num`).
    pub num: u32,
    /// Scheduled completion (kill-by) time.
    pub finish: SimTime,
}

impl RunningJob {
    /// Residual execution time at `now` (`res`).
    #[inline]
    pub fn residual(&self, now: SimTime) -> Duration {
        self.finish.saturating_since(now)
    }
}

/// Running jobs sorted by finish time (equivalently, by residual time).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningSet {
    jobs: Vec<RunningJob>,
}

impl RunningSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of active jobs `A`.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when nothing is running.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Jobs in increasing finish-time order.
    pub fn iter(&self) -> impl Iterator<Item = &RunningJob> {
        self.jobs.iter()
    }

    /// The jobs as a slice (increasing finish-time order).
    pub fn as_slice(&self) -> &[RunningJob] {
        &self.jobs
    }

    /// Sum of processors held by active jobs (`Σ a_i.num`).
    pub fn used(&self) -> u32 {
        self.jobs.iter().map(|j| j.num).sum()
    }

    /// Insert a newly started job, keeping the sort order. Ties on finish
    /// time are broken by job id for determinism.
    pub fn insert(&mut self, job: RunningJob) {
        let pos = self
            .jobs
            .partition_point(|j| (j.finish, j.id) < (job.finish, job.id));
        self.jobs.insert(pos, job);
    }

    /// Remove a job by id; returns it if present.
    pub fn remove(&mut self, id: JobId) -> Option<RunningJob> {
        let pos = self.jobs.iter().position(|j| j.id == id)?;
        Some(self.jobs.remove(pos))
    }

    /// Look up a running job by id.
    pub fn get(&self, id: JobId) -> Option<&RunningJob> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Change a running job's finish time (an ET/RT command landed),
    /// preserving the sort order. Returns false if the job is not present.
    pub fn update_finish(&mut self, id: JobId, finish: SimTime) -> bool {
        match self.remove(id) {
            Some(mut j) => {
                j.finish = finish;
                self.insert(j);
                true
            }
            None => false,
        }
    }

    /// Change a running job's processor count (an EP/RP command landed).
    /// Returns false if the job is not present.
    pub fn update_num(&mut self, id: JobId, num: u32) -> bool {
        match self.jobs.iter_mut().find(|j| j.id == id) {
            Some(j) => {
                j.num = num;
                true
            }
            None => false,
        }
    }

    /// The earliest time at which at least `needed` processors will be
    /// free, given `total` machine processors, assuming no new starts.
    /// This is the paper's shadow / freeze-end computation: walk active
    /// jobs in finish order accumulating released capacity.
    ///
    /// Returns `(time, extra)` where `extra` is the capacity that will be
    /// free *beyond* `needed` at that time (the "freeze end capacity").
    /// Returns `None` if `needed` exceeds `total`.
    pub fn earliest_fit(&self, now: SimTime, total: u32, needed: u32) -> Option<(SimTime, u32)> {
        if needed > total {
            return None;
        }
        let mut free = total - self.used();
        if free >= needed {
            return Some((now, free - needed));
        }
        for j in &self.jobs {
            free += j.num;
            if free >= needed {
                return Some((j.finish.max(now), free - needed));
            }
        }
        None // unreachable when Σ num + free == total and needed <= total
    }

    /// Capacity in use by jobs that are still running at time `at`
    /// (using the paper's convention: a job with `finish == at` has
    /// already released its processors at `at`).
    pub fn used_at(&self, at: SimTime) -> u32 {
        self.jobs
            .iter()
            .filter(|j| j.finish > at)
            .map(|j| j.num)
            .sum()
    }

    /// Invariant check: sorted by finish and no duplicate ids.
    #[cfg(any(test, debug_assertions))]
    pub fn check_invariants(&self) {
        for w in self.jobs.windows(2) {
            assert!(
                (w[0].finish, w[0].id) <= (w[1].finish, w[1].id),
                "running set out of order"
            );
            assert_ne!(w[0].id, w[1].id, "duplicate running job id");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn rj(id: u64, num: u32, finish: u64) -> RunningJob {
        RunningJob {
            id: JobId(id),
            num,
            finish: t(finish),
        }
    }

    #[test]
    fn insert_keeps_sorted() {
        let mut s = RunningSet::new();
        s.insert(rj(1, 32, 100));
        s.insert(rj(2, 64, 50));
        s.insert(rj(3, 32, 75));
        let order: Vec<u64> = s.iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
        s.check_invariants();
    }

    #[test]
    fn used_sums_allocations() {
        let mut s = RunningSet::new();
        s.insert(rj(1, 32, 100));
        s.insert(rj(2, 64, 50));
        assert_eq!(s.used(), 96);
        s.remove(JobId(1));
        assert_eq!(s.used(), 64);
    }

    #[test]
    fn update_finish_resorts() {
        let mut s = RunningSet::new();
        s.insert(rj(1, 32, 100));
        s.insert(rj(2, 64, 50));
        assert!(s.update_finish(JobId(2), t(200)));
        let order: Vec<u64> = s.iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![1, 2]);
        assert!(!s.update_finish(JobId(99), t(5)));
        s.check_invariants();
    }

    #[test]
    fn earliest_fit_now_when_capacity_free() {
        let s = RunningSet::new();
        assert_eq!(s.earliest_fit(t(10), 320, 64), Some((t(10), 256)));
    }

    #[test]
    fn earliest_fit_walks_completions() {
        let mut s = RunningSet::new();
        s.insert(rj(1, 128, 100));
        s.insert(rj(2, 128, 200));
        // total 320, used 256, free 64.
        // Need 100: after job 1 finishes (t=100) free = 192.
        assert_eq!(s.earliest_fit(t(0), 320, 100), Some((t(100), 92)));
        // Need 200: after both finish.
        assert_eq!(s.earliest_fit(t(0), 320, 200), Some((t(200), 120)));
        // Need more than the machine.
        assert_eq!(s.earliest_fit(t(0), 320, 400), None);
    }

    #[test]
    fn earliest_fit_never_before_now() {
        let mut s = RunningSet::new();
        s.insert(rj(1, 320, 5));
        // At t=10 the job's finish (5) is in the past but it is still in
        // the set (engine removes at completion); the max(now) clamp
        // protects against stale reads.
        assert_eq!(s.earliest_fit(t(10), 320, 320), Some((t(10), 0)));
    }

    #[test]
    fn used_at_respects_release_at_boundary() {
        let mut s = RunningSet::new();
        s.insert(rj(1, 128, 100));
        s.insert(rj(2, 64, 150));
        assert_eq!(s.used_at(t(99)), 192);
        assert_eq!(s.used_at(t(100)), 64, "finish==at releases capacity");
        assert_eq!(s.used_at(t(150)), 0);
    }

    #[test]
    fn get_and_update_num() {
        let mut s = RunningSet::new();
        s.insert(rj(1, 128, 100));
        assert_eq!(s.get(JobId(1)).unwrap().num, 128);
        assert!(s.update_num(JobId(1), 160));
        assert_eq!(s.get(JobId(1)).unwrap().num, 160);
        assert!(!s.update_num(JobId(9), 32));
        assert!(s.get(JobId(9)).is_none());
    }

    #[test]
    fn finish_tie_broken_by_id() {
        let mut s = RunningSet::new();
        s.insert(rj(5, 32, 100));
        s.insert(rj(2, 32, 100));
        s.insert(rj(9, 32, 100));
        let order: Vec<u64> = s.iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }
}
