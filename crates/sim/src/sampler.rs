//! Virtual-time telemetry sampling: the engine's time-resolved health
//! signal at streaming scale.
//!
//! The materialized metrics pipeline reconstructs utilization purely
//! from retained [`crate::JobOutcome`]s, which a streamed soak folds
//! away — exactly the runs whose time-resolved behaviour matters most.
//! This module records it online instead: a [`TimelineSampler`] takes
//! one [`TimelineSample`] per virtual-time stride at cycle boundaries,
//! and when the fixed point budget fills it **decimates** — drops every
//! other sample and doubles the stride — so a 10⁶-job soak and a
//! 500-job run both end with the same O(budget) resolution-adaptive
//! [`RunTimeline`].
//!
//! # Cost model
//!
//! Disabled (the default), the engine carries one `Option` that is
//! `None`: a single branch per scheduling cycle, nothing per event.
//! Enabled, a due sample costs one pass over the running set (a handful
//! of entries on a unit-granular machine) plus O(1) counter reads;
//! between due points it is one time comparison. Decimation is an
//! in-place retain over at most `budget` samples and runs
//! O(log(makespan/stride)) times per run.
//!
//! # Determinism
//!
//! Samples are a pure function of engine state at cycle boundaries and
//! the decimation schedule is a pure function of sample count, so the
//! streamed and materialized paths — which execute identical cycles —
//! produce **identical** timelines, field for field.
//! [`TimelineSample::event_queue_len`] earns this by counting only
//! *reactive* events (completions and wakeups): the materialized loader
//! pre-queues every arrival while the streamed loop holds one item of
//! source lookahead, so the raw queue population differs by load
//! strategy even when the simulated run is the same. The engine tracks
//! how many still-pending events came from `load` preloading and the
//! sampler subtracts them, leaving the path-independent count.

use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Default point budget: runs end with at most ~1k samples.
pub const DEFAULT_TIMELINE_BUDGET: u32 = 1024;

/// Default initial stride: one sample per simulated second until the
/// budget forces coarser resolution.
pub const DEFAULT_TIMELINE_STRIDE: Duration = Duration::from_secs(1);

/// How the engine should sample a run's timeline (see
/// [`crate::Engine::enable_timeline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineConfig {
    /// Initial virtual-time stride between samples. Doubles on every
    /// decimation, so it only sets the *finest* resolution.
    pub stride: Duration,
    /// Hard cap on retained samples (clamped to at least 2).
    pub budget: u32,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            stride: DEFAULT_TIMELINE_STRIDE,
            budget: DEFAULT_TIMELINE_BUDGET,
        }
    }
}

/// One point on a run's timeline: system state after the scheduling
/// cycle at `at`, plus cumulative counters from which rates between
/// consecutive samples can be derived by differencing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TimelineSample {
    /// Sample time (a cycle boundary), simulated seconds.
    pub at: SimTime,
    /// Instantaneous machine utilization in `[0, 1]` (allocated /
    /// total), *not* the run-mean the paper reports.
    pub util: f64,
    /// Free processors.
    pub free: u32,
    /// Processors held by running dedicated jobs.
    pub dedicated_procs: u32,
    /// Processors held by running jobs that have absorbed at least one
    /// Elastic Control Command.
    pub ecc_procs: u32,
    /// Jobs waiting in the scheduler's queues.
    pub queue_depth: u32,
    /// Age of the oldest waiting job (now − submit), seconds; 0 when
    /// the queue is empty.
    pub oldest_wait_secs: u64,
    /// Running jobs.
    pub running: u32,
    /// Entries in the engine's waiting-jobs snapshot buffer (live views
    /// plus not-yet-compacted dead ones) — the quantity
    /// [`crate::EngineStats::peak_wait_views`] tracks the peak of.
    pub live_wait_views: u32,
    /// Pending *reactive* engine events: completions and scheduler
    /// wakeups, excluding arrivals/ECCs pre-queued by a materialized
    /// `load`. Identical between the materialized and streaming paths;
    /// see the module docs.
    pub event_queue_len: u32,
    /// Cumulative ECCs applied so far.
    pub eccs_applied: u64,
    /// Cumulative scheduler-initiated malleable reconfigurations
    /// (grows + shrinks) so far.
    #[serde(default)]
    pub reconfigs: u64,
    /// Cumulative DP selection-cache hits so far.
    pub dp_cache_hits: u64,
    /// Cumulative DP selection-cache misses so far.
    pub dp_cache_misses: u64,
    /// Cumulative misses answered by the cross-cycle incremental table.
    pub dp_incremental_hits: u64,
    /// Cumulative incremental-table rebuilds from row zero.
    pub dp_incremental_rebuilds: u64,
}

/// A whole run's sampled timeline: the final stride/decimation shape
/// plus the retained samples, oldest first. Empty (the [`Default`])
/// unless sampling was enabled on the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunTimeline {
    /// The stride the run *started* with.
    #[serde(default)]
    pub base_stride_secs: u64,
    /// The stride in effect when the run ended (base × 2^decimations).
    #[serde(default)]
    pub stride_secs: u64,
    /// The point budget the sampler ran under.
    #[serde(default)]
    pub budget: u32,
    /// How many times the budget filled and every other sample was
    /// dropped.
    #[serde(default)]
    pub decimations: u32,
    /// Retained samples in time order. Never longer than `budget`; the
    /// first cycle's sample survives every decimation and the last
    /// sample is forced at the end of the run.
    #[serde(default)]
    pub samples: Vec<TimelineSample>,
}

impl RunTimeline {
    /// True when sampling was disabled (or the run had no cycles).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Render as line-delimited JSON: a `{"meta":{…}}` header line
    /// describing the sampling shape, then one sample object per line,
    /// oldest first, with a trailing newline. The header is *not* a
    /// sample — readers must treat line one specially (mirroring the
    /// postmortem format in `elastisched-trace`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.samples.len() * 128);
        out.push_str(&format!(
            "{{\"meta\":{{\"base_stride_secs\":{},\"stride_secs\":{},\"budget\":{},\"decimations\":{},\"samples\":{}}}}}\n",
            self.base_stride_secs,
            self.stride_secs,
            self.budget,
            self.decimations,
            self.samples.len(),
        ));
        for s in &self.samples {
            // The vendored serde_json never fails on in-memory values.
            out.push_str(&serde_json::to_string(s).unwrap_or_default());
            out.push('\n');
        }
        out
    }

    /// Render as CSV with a header row, one sample per line.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 + self.samples.len() * 96);
        out.push_str(
            "at,util,free,dedicated_procs,ecc_procs,queue_depth,oldest_wait_secs,\
             running,live_wait_views,event_queue_len,eccs_applied,reconfigs,\
             dp_cache_hits,dp_cache_misses,dp_incremental_hits,dp_incremental_rebuilds\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                s.at.as_secs(),
                s.util,
                s.free,
                s.dedicated_procs,
                s.ecc_procs,
                s.queue_depth,
                s.oldest_wait_secs,
                s.running,
                s.live_wait_views,
                s.event_queue_len,
                s.eccs_applied,
                s.reconfigs,
                s.dp_cache_hits,
                s.dp_cache_misses,
                s.dp_incremental_hits,
                s.dp_incremental_rebuilds,
            ));
        }
        out
    }

    /// Parse the [`RunTimeline::to_jsonl`] form back (header line plus
    /// sample lines). Tolerates a missing header for hand-made files.
    pub fn from_jsonl(text: &str) -> Result<RunTimeline, String> {
        let mut tl = RunTimeline::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if i == 0 && line.starts_with("{\"meta\"") {
                #[derive(Deserialize)]
                struct Header {
                    meta: Meta,
                }
                #[derive(Deserialize)]
                struct Meta {
                    #[serde(default)]
                    base_stride_secs: u64,
                    #[serde(default)]
                    stride_secs: u64,
                    #[serde(default)]
                    budget: u32,
                    #[serde(default)]
                    decimations: u32,
                }
                let h: Header = serde_json::from_str(line)
                    .map_err(|e| format!("malformed timeline header: {e}"))?;
                tl.base_stride_secs = h.meta.base_stride_secs;
                tl.stride_secs = h.meta.stride_secs;
                tl.budget = h.meta.budget;
                tl.decimations = h.meta.decimations;
                continue;
            }
            let s: TimelineSample = serde_json::from_str(line)
                .map_err(|e| format!("malformed timeline sample on line {}: {e}", i + 1))?;
            tl.samples.push(s);
        }
        Ok(tl)
    }
}

/// The live sampling state the engine carries while a run is in flight.
/// Build one with [`TimelineSampler::new`], ask [`TimelineSampler::due`]
/// at each cycle boundary, [`TimelineSampler::push`] when it says yes,
/// and [`TimelineSampler::into_timeline`] at the end of the run.
#[derive(Debug, Clone)]
pub struct TimelineSampler {
    base_stride: Duration,
    stride: Duration,
    budget: usize,
    next_due: SimTime,
    decimations: u32,
    samples: Vec<TimelineSample>,
}

impl TimelineSampler {
    /// Build a sampler for one run. The budget is clamped to at least 2
    /// so decimation always has something to halve.
    pub fn new(cfg: TimelineConfig) -> Self {
        let stride = cfg.stride.max(Duration::from_secs(1));
        TimelineSampler {
            base_stride: stride,
            stride,
            budget: cfg.budget.max(2) as usize,
            next_due: SimTime::ZERO,
            decimations: 0,
            samples: Vec::new(),
        }
    }

    /// Is a sample due at `now`? True on the very first cycle and then
    /// once per stride.
    #[inline]
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Time of the most recent retained sample.
    pub fn last_at(&self) -> Option<SimTime> {
        self.samples.last().map(|s| s.at)
    }

    /// The retained samples so far, oldest first (the postmortem dump
    /// snapshots the tail of this).
    pub fn samples(&self) -> &[TimelineSample] {
        &self.samples
    }

    /// Record a sample. Accepts samples out of stride (the end-of-run
    /// forced sample) but requires time monotonicity; a sample at the
    /// same instant as the previous one replaces it. Decimates *before*
    /// storing when the budget is full, so the newest sample is always
    /// retained and `len() <= budget` always holds.
    pub fn push(&mut self, sample: TimelineSample) {
        if let Some(last) = self.samples.last_mut() {
            debug_assert!(sample.at >= last.at, "timeline sample time went backwards");
            if last.at == sample.at {
                *last = sample;
                return;
            }
        }
        if self.samples.len() >= self.budget {
            self.decimate();
        }
        self.next_due = sample.at + self.stride;
        self.samples.push(sample);
    }

    /// Drop every odd-indexed sample (index 0 — the run's first sample
    /// — always survives) and double the stride.
    fn decimate(&mut self) {
        let mut i = 0usize;
        self.samples.retain(|_| {
            let keep = i % 2 == 0;
            i += 1;
            keep
        });
        self.stride = Duration::from_secs(self.stride.as_secs().saturating_mul(2).max(1));
        self.decimations += 1;
    }

    /// Finalize into the exported [`RunTimeline`].
    pub fn into_timeline(self) -> RunTimeline {
        RunTimeline {
            base_stride_secs: self.base_stride.as_secs(),
            stride_secs: self.stride.as_secs(),
            budget: self.budget as u32,
            decimations: self.decimations,
            samples: self.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_at(at: u64) -> TimelineSample {
        TimelineSample {
            at: SimTime::from_secs(at),
            util: 0.5,
            free: 160,
            ..Default::default()
        }
    }

    /// Drive a sampler over event times the way the engine does: ask
    /// `due`, push when yes.
    fn drive(cfg: TimelineConfig, times: &[u64]) -> TimelineSampler {
        let mut s = TimelineSampler::new(cfg);
        for &t in times {
            if s.due(SimTime::from_secs(t)) {
                s.push(sample_at(t));
            }
        }
        s
    }

    #[test]
    fn dense_run_decimates_to_budget() {
        let cfg = TimelineConfig {
            stride: Duration::from_secs(1),
            budget: 8,
        };
        let times: Vec<u64> = (0..1000).collect();
        let s = drive(cfg, &times);
        let tl = s.into_timeline();
        assert!(tl.samples.len() <= 8);
        assert!(tl.decimations >= 6, "1000 points into 8 needs ≥6 halvings");
        assert_eq!(tl.samples[0].at, SimTime::ZERO, "first sample retained");
        assert_eq!(tl.stride_secs, 1 << tl.decimations);
        assert_eq!(tl.base_stride_secs, 1);
    }

    #[test]
    fn sparse_run_keeps_every_sample() {
        let cfg = TimelineConfig::default();
        let times = [0, 100, 5000, 90_000];
        let tl = drive(cfg, &times).into_timeline();
        assert_eq!(tl.samples.len(), 4);
        assert_eq!(tl.decimations, 0);
    }

    #[test]
    fn same_instant_push_replaces_not_appends() {
        let mut s = TimelineSampler::new(TimelineConfig::default());
        s.push(sample_at(5));
        let mut again = sample_at(5);
        again.util = 0.75;
        s.push(again);
        assert_eq!(s.samples().len(), 1);
        assert_eq!(s.samples()[0].util, 0.75);
    }

    #[test]
    fn forced_final_sample_is_retained_through_a_decimation() {
        let cfg = TimelineConfig {
            stride: Duration::from_secs(1),
            budget: 4,
        };
        let mut s = drive(cfg, &(0..4).collect::<Vec<_>>());
        assert_eq!(s.samples().len(), 4);
        // The end-of-run forced sample lands with the ring exactly full:
        // decimate-then-store must keep it.
        s.push(sample_at(1000));
        let tl = s.into_timeline();
        assert!(tl.samples.len() <= 4);
        assert_eq!(tl.samples.last().unwrap().at, SimTime::from_secs(1000));
        assert_eq!(tl.samples[0].at, SimTime::ZERO);
    }

    #[test]
    fn jsonl_round_trips_with_header() {
        let tl = drive(
            TimelineConfig {
                stride: Duration::from_secs(1),
                budget: 4,
            },
            &[0, 1, 2, 3, 4, 5, 6, 7],
        )
        .into_timeline();
        let text = tl.to_jsonl();
        assert!(text.starts_with("{\"meta\":"));
        assert_eq!(text.lines().count(), tl.samples.len() + 1);
        let back = RunTimeline::from_jsonl(&text).unwrap();
        assert_eq!(back, tl);
    }

    #[test]
    fn csv_has_header_and_one_row_per_sample() {
        let tl = drive(TimelineConfig::default(), &[0, 10, 20]).into_timeline();
        let csv = tl.to_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("at,util,free"));
        assert_eq!(lines.count(), 3);
    }

    #[test]
    fn from_jsonl_rejects_garbage() {
        assert!(RunTimeline::from_jsonl("not json\n").is_err());
        assert!(RunTimeline::from_jsonl("").unwrap().is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Budget is never exceeded, samples are strictly
            /// increasing in time, and the first sample survives every
            /// decimation — for arbitrary event-time sequences and
            /// budgets.
            #[test]
            fn decimation_invariants(
                deltas in prop::collection::vec(0u64..500, 1..400),
                budget in 2u32..64,
                stride in 1u64..20,
            ) {
                let cfg = TimelineConfig {
                    stride: Duration::from_secs(stride),
                    budget,
                };
                let mut s = TimelineSampler::new(cfg);
                let mut t = 0u64;
                let mut first_sampled = None;
                let mut last_t = 0u64;
                for d in deltas {
                    t += d;
                    last_t = t;
                    if s.due(SimTime::from_secs(t)) {
                        s.push(sample_at(t));
                        first_sampled.get_or_insert(t);
                    }
                    prop_assert!(s.samples().len() <= budget as usize);
                }
                // End-of-run forced sample, as the engine's finish does.
                s.push(sample_at(last_t));
                let tl = s.into_timeline();
                prop_assert!(tl.samples.len() <= budget as usize);
                prop_assert!(!tl.samples.is_empty());
                // First due sample retained (t=0 is always due).
                prop_assert_eq!(
                    tl.samples[0].at.as_secs(),
                    first_sampled.unwrap_or(last_t)
                );
                // Last sample is the forced end-of-run point.
                prop_assert_eq!(tl.samples.last().unwrap().at.as_secs(), last_t);
                // Strictly increasing times.
                for w in tl.samples.windows(2) {
                    prop_assert!(w[0].at < w[1].at);
                }
                // Stride bookkeeping matches the decimation count.
                prop_assert_eq!(
                    tl.stride_secs,
                    tl.base_stride_secs << tl.decimations.min(63)
                );
            }
        }
    }
}
