//! Pull-based workload streams.
//!
//! A [`JobSource`] feeds the engine one item at a time in submit-time
//! order, so a run never has to materialize the whole trace: the engine
//! admits each arrival lazily when the virtual clock reaches it and
//! reclaims the job's state at completion, keeping peak memory
//! proportional to the number of *live* jobs rather than the trace
//! length. The materialized [`Engine::load`](crate::Engine::load) path
//! is unchanged; streaming is a second front door over the same event
//! loop with bit-identical semantics (see `Engine::run_streaming`).
//!
//! ## Ordering contract
//!
//! Implementations must yield items in non-decreasing [`SourceItem::time`]
//! order — the engine rejects a time that goes backwards with
//! [`SimError::UnorderedSource`](crate::SimError::UnorderedSource). Two
//! additional conventions make a streamed run indistinguishable from the
//! materialized one:
//!
//! - at one instant, jobs are yielded before ECCs (the materialized
//!   loader pushes every arrival before any ECC event);
//! - an ECC is yielded at or after its target job's submission (the
//!   engine cannot apply a command to a job it has not seen; such a
//!   command counts as `dropped_stale`, where the materialized path
//!   would have pre-applied it to the future job).
//!
//! Sources over concrete formats (SWF, CWF, the Lublin generator) live
//! in `elastisched-workload`; this module only defines the contract plus
//! [`SliceSource`], the borrowed merge of already-materialized slices
//! that the differential tests pit against `load()`.

use crate::ecc::EccSpec;
use crate::job::JobSpec;
use crate::time::SimTime;

/// One element of a time-ordered workload stream: a job submission or an
/// Elastic Control Command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceItem {
    /// A job entering the system at [`JobSpec::submit`].
    Job(JobSpec),
    /// An ECC issued at [`EccSpec::issue_at`].
    Ecc(EccSpec),
}

impl SourceItem {
    /// The simulated instant this item enters the system.
    pub fn time(&self) -> SimTime {
        match self {
            SourceItem::Job(j) => j.submit,
            SourceItem::Ecc(e) => e.issue_at,
        }
    }
}

/// A pull-based, submit-time-ordered workload stream.
///
/// The engine drives this like a fallible iterator: `next_item` is
/// called once per admitted item, never ahead of the virtual clock by
/// more than one item (the engine holds exactly one pending item to know
/// the next instant). See the module docs for the ordering contract.
pub trait JobSource {
    /// Pull the next item, or `None` when the stream is exhausted.
    fn next_item(&mut self) -> Option<SourceItem>;

    /// Iterator-style bounds on the remaining item count, purely
    /// advisory (the engine sizes nothing from it today).
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

impl<T: JobSource + ?Sized> JobSource for &mut T {
    fn next_item(&mut self) -> Option<SourceItem> {
        (**self).next_item()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }
}

/// Streams borrowed job/ECC slices, merged by time with jobs first at
/// ties — exactly the order the materialized loader establishes.
///
/// Both slices must already be sorted by their own time field (generator
/// output and parsed archive logs are); an inversion surfaces as
/// `SimError::UnorderedSource` when the engine consumes the merge.
#[derive(Debug)]
pub struct SliceSource<'a> {
    jobs: &'a [JobSpec],
    eccs: &'a [EccSpec],
    job_at: usize,
    ecc_at: usize,
}

impl<'a> SliceSource<'a> {
    /// A merged stream over `jobs` and `eccs`.
    pub fn new(jobs: &'a [JobSpec], eccs: &'a [EccSpec]) -> Self {
        SliceSource {
            jobs,
            eccs,
            job_at: 0,
            ecc_at: 0,
        }
    }
}

impl JobSource for SliceSource<'_> {
    fn next_item(&mut self) -> Option<SourceItem> {
        let job = self.jobs.get(self.job_at);
        let ecc = self.eccs.get(self.ecc_at);
        match (job, ecc) {
            (None, None) => None,
            (Some(j), None) => {
                self.job_at += 1;
                Some(SourceItem::Job(*j))
            }
            (None, Some(e)) => {
                self.ecc_at += 1;
                Some(SourceItem::Ecc(*e))
            }
            (Some(j), Some(e)) => {
                // Jobs win ties so same-instant arrivals dispatch before
                // same-instant commands, matching the load() order.
                if j.submit <= e.issue_at {
                    self.job_at += 1;
                    Some(SourceItem::Job(*j))
                } else {
                    self.ecc_at += 1;
                    Some(SourceItem::Ecc(*e))
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.jobs.len() - self.job_at) + (self.eccs.len() - self.ecc_at);
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecc::EccSpec;
    use crate::job::JobId;

    #[test]
    fn slice_source_merges_jobs_before_eccs_at_ties() {
        let jobs = [JobSpec::batch(1, 5, 32, 10), JobSpec::batch(2, 20, 32, 10)];
        let eccs = [
            EccSpec::extend_time(JobId(1), SimTime::from_secs(5), 1),
            EccSpec::extend_time(JobId(1), SimTime::from_secs(12), 1),
        ];
        let mut src = SliceSource::new(&jobs, &eccs);
        assert_eq!(src.size_hint(), (4, Some(4)));
        let order: Vec<SimTime> = std::iter::from_fn(|| src.next_item())
            .map(|i| i.time())
            .collect();
        assert_eq!(
            order,
            vec![
                SimTime::from_secs(5),
                SimTime::from_secs(5),
                SimTime::from_secs(12),
                SimTime::from_secs(20)
            ]
        );
        // The tie at t=5 resolved job-first.
        let mut src = SliceSource::new(&jobs, &eccs);
        assert!(matches!(src.next_item(), Some(SourceItem::Job(_))));
        assert!(matches!(src.next_item(), Some(SourceItem::Ecc(_))));
        assert_eq!(src.size_hint(), (2, Some(2)));
    }

    #[test]
    fn empty_slices_end_immediately() {
        let mut src = SliceSource::new(&[], &[]);
        assert!(src.next_item().is_none());
        assert_eq!(src.size_hint(), (0, Some(0)));
    }
}
