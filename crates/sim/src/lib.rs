//! # elastisched-sim
//!
//! Discrete-event simulation kernel for parallel job scheduling research.
//!
//! This crate is the Rust substitute for the GridSim + ALEA stack used in
//! *"Scheduling Batch and Heterogeneous Jobs with Runtime Elasticity in a
//! Parallel Processing Environment"*: an event-ordered virtual clock, a
//! BlueGene/P-style machine model with unit-granular allocation, the job
//! lifecycle (arrival → waiting → running → completed), the active-job
//! list `A` sorted by residual time, and the Elastic Control Command
//! processor that implements runtime elasticity in the time (and,
//! optionally, processor) dimension.
//!
//! Scheduling policies implement the [`Scheduler`] trait and live in the
//! `elastisched-sched` crate; the engine is policy-agnostic.
//!
//! ```
//! use elastisched_sim::{Machine, JobSpec};
//!
//! let machine = Machine::bluegene_p();
//! assert_eq!(machine.total(), 320);
//! let job = JobSpec::batch(1, 0, 64, 3600);
//! assert!(machine.is_valid_request(job.num).is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod contiguous;
pub mod ecc;
pub mod engine;
pub mod event;
pub mod job;
pub mod machine;
pub mod reconfig;
pub mod running;
pub mod sampler;
pub mod sched_api;
pub mod source;
pub mod time;

pub use attribution::{AttrNotes, AttributionProfile, BlockerShare, WaitAttribution, TOP_BLOCKERS};
pub use contiguous::{ContigError, ContiguousMachine, Extent, ReplayEvent, ReplayStats};
pub use ecc::{EccKind, EccPolicy, EccSpec};
pub use engine::{simulate, EccStats, Engine, EngineStats, SimError, SimResult, StateSample};
pub use sampler::{
    RunTimeline, TimelineConfig, TimelineSample, TimelineSampler, DEFAULT_TIMELINE_BUDGET,
    DEFAULT_TIMELINE_STRIDE,
};
pub use event::{Event, EventQueue};
pub use job::{JobClass, JobId, JobOutcome, JobRecord, JobSpec, JobState};
pub use machine::{Machine, MachineError};
pub use reconfig::{ReconfigCost, ReconfigStats};
pub use running::{RunningJob, RunningSet};
pub use sched_api::{
    JobView, SchedContext, SchedStats, Scheduler, StartError, DP_NANOS_SAMPLE_EVERY,
};
pub use source::{JobSource, SliceSource, SourceItem};
pub use time::{Duration, SimTime};

// Tracing / telemetry re-exports, so downstream crates that only need
// to *read* a trace or touch the metrics plane (metrics, the CLI) can
// stay off the trace crate directly.
pub use elastisched_trace::{
    metric, metrics, profile, read_postmortem, serve, trace_event, write_postmortem, DpKernel,
    EccTag, LogHistogram, MetricsRegistry, MetricsSnapshot, MetricsServer, Phase, PhaseProfile,
    PhaseTimer, PostmortemSnapshot, StatusDoc, TraceEvent, TraceSink,
};
