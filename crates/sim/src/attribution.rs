//! Wait-time attribution: *why* did each job wait?
//!
//! The metrics plane reports *that* jobs waited; this module decomposes
//! each job's queue wait into causes so two scheduler stacks can be
//! compared causally ("Delayed-LOS traded 400s of head skips for 9000s
//! less capacity blocking") instead of numerically.
//!
//! # Cause taxonomy
//!
//! Every second of every job's wait (from [`JobSpec::eligible_at`] to
//! its start) lands in exactly one bucket:
//!
//! - **capacity** — the job did not fit in the free processors, and the
//!   shortfall is held by ordinary running batch jobs. The largest
//!   current allocation is recorded as the *lead blocker*.
//! - **dedicated** — the job would fit if the processors held by
//!   running dedicated jobs were free: dedicated-node contention.
//! - **ecc** — the job would fit were it not for processors gained by
//!   running jobs through expand-procs ECCs: elastic reconfiguration
//!   stole the headroom.
//! - **malleable** — the job would fit were it not for processors held
//!   by running jobs *above their preferred width* through
//!   scheduler-initiated malleable grows: the malleable layer's
//!   opportunistic expansion is holding the headroom.
//! - **policy_skip** — the job fit but the policy passed it over: a DP
//!   selection skipped the head (Delayed-LOS `scount` budget), or the
//!   policy simply did not reach it this cycle.
//! - **freeze** — the job fit but a freeze window (EASY/LOS shadow
//!   reservation, or a dedicated claim's freeze) blocked starts at or
//!   below the frozen width.
//!
//! Classification happens once per scheduler cycle (after the policy
//! ran) and the *next* interval is charged to that cause when the next
//! cycle — or the job's start — arrives. Since every charge happens at
//! a cycle instant and intervals telescope, the invariant
//! `sum(causes) == total wait` holds exactly; the `audit` feature
//! promotes it to a per-completion hard check.
//!
//! [`JobSpec::eligible_at`]: crate::JobSpec::eligible_at

use crate::job::JobId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Bound on the per-run "top blockers" summary (Misra–Gries heavy
/// hitters over lead-blocker seconds).
pub const TOP_BLOCKERS: usize = 8;

/// Per-job decomposition of queue wait into causes, in whole seconds.
///
/// Produced by the engine when attribution is enabled (see
/// `Engine::enable_attribution`) and attached to the job's
/// [`JobOutcome`]. The six `*_secs` buckets always sum to the job's
/// total wait.
///
/// [`JobOutcome`]: crate::JobOutcome
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitAttribution {
    /// Seconds blocked on insufficient free capacity held by ordinary
    /// running jobs.
    pub capacity_secs: u64,
    /// Seconds blocked specifically by running dedicated jobs.
    pub dedicated_secs: u64,
    /// Seconds blocked by processors gained through expand-procs ECCs.
    pub ecc_secs: u64,
    /// Seconds blocked by processors held above preferred width through
    /// scheduler-initiated malleable grows.
    #[serde(default)]
    pub malleable_secs: u64,
    /// Seconds the job fit but was passed over by the policy (head
    /// skips, DP selections, queue order).
    pub policy_skip_secs: u64,
    /// Seconds the job fit but a freeze window (shadow reservation or
    /// dedicated claim) blocked starts.
    pub freeze_secs: u64,
    /// The running job that most often led the capacity blockade, by
    /// majority vote over capacity-blocked seconds (k=1 Misra–Gries:
    /// exact when one blocker dominates).
    pub lead_blocker: Option<u64>,
    /// Surviving vote weight behind `lead_blocker`, in seconds.
    pub lead_blocker_secs: u64,
}

impl WaitAttribution {
    /// Total attributed seconds — equals the job's wait exactly.
    pub fn total_secs(&self) -> u64 {
        self.capacity_secs
            + self.dedicated_secs
            + self.ecc_secs
            + self.malleable_secs
            + self.policy_skip_secs
            + self.freeze_secs
    }
}

/// One heavy-hitter entry in [`AttributionProfile::top_blockers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockerShare {
    /// The running job charged with blocking.
    pub job: u64,
    /// Surviving Misra–Gries weight, in lead-blocker seconds. A lower
    /// bound on the true count; ordering is reliable for dominant
    /// blockers.
    pub secs: u64,
}

/// Per-run roll-up of every completed job's [`WaitAttribution`],
/// folded O(1) at completion so streamed runs carry it in bounded
/// memory.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributionProfile {
    /// Jobs folded into this profile.
    pub jobs: u64,
    /// Jobs that started the instant they became eligible.
    pub zero_wait_jobs: u64,
    /// Sum of per-job capacity-blocked seconds.
    pub capacity_secs: u64,
    /// Sum of per-job dedicated-contention seconds.
    pub dedicated_secs: u64,
    /// Sum of per-job ECC-reconfiguration seconds.
    pub ecc_secs: u64,
    /// Sum of per-job malleable-grow contention seconds.
    #[serde(default)]
    pub malleable_secs: u64,
    /// Sum of per-job policy-skip seconds.
    pub policy_skip_secs: u64,
    /// Sum of per-job freeze-window seconds.
    pub freeze_secs: u64,
    /// Heavy hitters among lead blockers ([`TOP_BLOCKERS`]-bounded
    /// Misra–Gries summary; weights are lower bounds).
    pub top_blockers: Vec<BlockerShare>,
}

impl AttributionProfile {
    /// True when no job has been folded in (attribution disabled, or
    /// an empty run).
    pub fn is_empty(&self) -> bool {
        self.jobs == 0
    }

    /// Total attributed seconds across every folded job — equals the
    /// run's total wait exactly.
    pub fn total_secs(&self) -> u64 {
        self.capacity_secs
            + self.dedicated_secs
            + self.ecc_secs
            + self.malleable_secs
            + self.policy_skip_secs
            + self.freeze_secs
    }

    /// Fold one completed job's attribution into the run profile.
    pub fn fold(&mut self, a: &WaitAttribution) {
        self.jobs += 1;
        if a.total_secs() == 0 {
            self.zero_wait_jobs += 1;
        }
        self.capacity_secs += a.capacity_secs;
        self.dedicated_secs += a.dedicated_secs;
        self.ecc_secs += a.ecc_secs;
        self.malleable_secs += a.malleable_secs;
        self.policy_skip_secs += a.policy_skip_secs;
        self.freeze_secs += a.freeze_secs;
        if let Some(job) = a.lead_blocker {
            if a.lead_blocker_secs > 0 {
                self.credit_blocker(job, a.lead_blocker_secs);
            }
        }
    }

    /// Misra–Gries update: exact for blockers that dominate, bounded
    /// at [`TOP_BLOCKERS`] entries regardless of run length.
    fn credit_blocker(&mut self, job: u64, secs: u64) {
        if let Some(e) = self.top_blockers.iter_mut().find(|e| e.job == job) {
            e.secs += secs;
            return;
        }
        if self.top_blockers.len() < TOP_BLOCKERS {
            self.top_blockers.push(BlockerShare { job, secs });
            return;
        }
        for e in &mut self.top_blockers {
            e.secs = e.secs.saturating_sub(secs);
        }
        self.top_blockers.retain(|e| e.secs > 0);
    }
}

/// Per-cycle notes a policy leaves for the attribution pass (via
/// `SchedContext::attribution`). Cleared by the engine after each
/// cycle's classification.
#[derive(Debug, Default)]
pub struct AttrNotes {
    /// Jobs the policy *saw and deliberately passed over* this cycle
    /// (Delayed-LOS head skips under the `scount` budget).
    pub skipped: Vec<JobId>,
    /// A freeze window (EASY/LOS shadow reservation or a dedicated
    /// claim's freeze) constrained starts this cycle.
    pub freeze: bool,
}

impl AttrNotes {
    /// Note that the policy deliberately skipped `id` this cycle.
    #[inline]
    pub fn note_skip(&mut self, id: JobId) {
        if !self.skipped.contains(&id) {
            self.skipped.push(id);
        }
    }

    /// Note that a freeze window constrained starts this cycle.
    #[inline]
    pub fn note_freeze(&mut self) {
        self.freeze = true;
    }

    pub(crate) fn clear(&mut self) {
        self.skipped.clear();
        self.freeze = false;
    }
}

/// The cause the *next* wait interval will be charged to, decided at
/// the end of the previous cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) enum PendingCause {
    Capacity(JobId),
    Dedicated,
    Ecc,
    Malleable,
    #[default]
    PolicySkip,
    Freeze,
}

/// Per-job attribution accumulator, slab-parallel to the engine's job
/// records (recycled with the slot on streamed runs).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct JobAttr {
    /// Instant up to which this job's wait has been charged.
    pub from: SimTime,
    /// Cause for the interval since `from`.
    pub pending: PendingCause,
    /// Buckets charged so far.
    pub attr: WaitAttribution,
}

impl JobAttr {
    /// Fresh accumulator for a job arriving at `at`. The initial
    /// pending cause is irrelevant: a cycle fires at every arrival
    /// instant, so the first charge always spans zero seconds.
    pub fn new(at: SimTime) -> Self {
        JobAttr {
            from: at,
            ..JobAttr::default()
        }
    }

    /// Charge the interval `[max(from, eligible), now)` to the pending
    /// cause and advance `from`. Clamping to `eligible` means seconds
    /// before a dedicated job's requested start are never charged, so
    /// the buckets telescope to exactly `started - eligible`.
    pub fn charge_until(&mut self, now: SimTime, eligible: SimTime) {
        let base = if self.from > eligible { self.from } else { eligible };
        let span = now.saturating_since(base).as_secs();
        if span > 0 {
            match self.pending {
                PendingCause::Capacity(b) => {
                    self.attr.capacity_secs += span;
                    self.vote_blocker(b.0, span);
                }
                PendingCause::Dedicated => self.attr.dedicated_secs += span,
                PendingCause::Ecc => self.attr.ecc_secs += span,
                PendingCause::Malleable => self.attr.malleable_secs += span,
                PendingCause::PolicySkip => self.attr.policy_skip_secs += span,
                PendingCause::Freeze => self.attr.freeze_secs += span,
            }
        }
        self.from = now;
    }

    /// k=1 Misra–Gries majority vote over capacity-blocked seconds.
    fn vote_blocker(&mut self, job: u64, secs: u64) {
        match self.attr.lead_blocker {
            Some(cur) if cur == job => self.attr.lead_blocker_secs += secs,
            Some(_) => {
                if self.attr.lead_blocker_secs > secs {
                    self.attr.lead_blocker_secs -= secs;
                } else {
                    self.attr.lead_blocker = Some(job);
                    self.attr.lead_blocker_secs = secs - self.attr.lead_blocker_secs;
                }
            }
            None => {
                self.attr.lead_blocker = Some(job);
                self.attr.lead_blocker_secs = secs;
            }
        }
    }
}

/// Engine-side attribution state: the per-job slab, the run profile,
/// and the policy's per-cycle notes. Boxed behind an `Option` on the
/// engine so the disabled path costs one branch per cycle.
#[derive(Debug, Default)]
pub(crate) struct AttrState {
    pub jobs: Vec<JobAttr>,
    pub profile: AttributionProfile,
    pub notes: AttrNotes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_telescope_to_the_full_wait() {
        let mut ja = JobAttr::new(SimTime::from_secs(10));
        let eligible = SimTime::from_secs(10);
        ja.pending = PendingCause::Capacity(JobId(7));
        ja.charge_until(SimTime::from_secs(40), eligible);
        ja.pending = PendingCause::PolicySkip;
        ja.charge_until(SimTime::from_secs(55), eligible);
        ja.pending = PendingCause::Freeze;
        ja.charge_until(SimTime::from_secs(60), eligible);
        assert_eq!(ja.attr.capacity_secs, 30);
        assert_eq!(ja.attr.policy_skip_secs, 15);
        assert_eq!(ja.attr.freeze_secs, 5);
        assert_eq!(ja.attr.total_secs(), 50);
        assert_eq!(ja.attr.lead_blocker, Some(7));
    }

    #[test]
    fn eligibility_clamp_skips_pre_eligible_spans() {
        // Dedicated job: submitted at 0, requested start 100. Waiting
        // before t=100 is not "wait" in the paper's sense.
        let mut ja = JobAttr::new(SimTime::ZERO);
        let eligible = SimTime::from_secs(100);
        ja.pending = PendingCause::Dedicated;
        ja.charge_until(SimTime::from_secs(50), eligible);
        assert_eq!(ja.attr.total_secs(), 0, "pre-eligible span never charged");
        ja.charge_until(SimTime::from_secs(130), eligible);
        assert_eq!(ja.attr.dedicated_secs, 30);
    }

    #[test]
    fn lead_blocker_majority_vote() {
        let mut ja = JobAttr::new(SimTime::ZERO);
        let e = SimTime::ZERO;
        ja.pending = PendingCause::Capacity(JobId(1));
        ja.charge_until(SimTime::from_secs(100), e);
        ja.pending = PendingCause::Capacity(JobId(2));
        ja.charge_until(SimTime::from_secs(130), e);
        ja.pending = PendingCause::Capacity(JobId(1));
        ja.charge_until(SimTime::from_secs(180), e);
        // 150s for job 1 vs 30s for job 2: job 1 survives the vote.
        assert_eq!(ja.attr.lead_blocker, Some(1));
        assert_eq!(ja.attr.capacity_secs, 180);
    }

    #[test]
    fn profile_fold_sums_and_counts_zero_waits() {
        let mut p = AttributionProfile::default();
        assert!(p.is_empty());
        let a = WaitAttribution {
            capacity_secs: 40,
            freeze_secs: 2,
            lead_blocker: Some(9),
            lead_blocker_secs: 40,
            ..Default::default()
        };
        p.fold(&a);
        p.fold(&WaitAttribution::default());
        assert_eq!(p.jobs, 2);
        assert_eq!(p.zero_wait_jobs, 1);
        assert_eq!(p.total_secs(), 42);
        assert_eq!(p.top_blockers, vec![BlockerShare { job: 9, secs: 40 }]);
        assert!(!p.is_empty());
    }

    #[test]
    fn top_blockers_stay_bounded() {
        let mut p = AttributionProfile::default();
        for i in 0..100u64 {
            let a = WaitAttribution {
                capacity_secs: 1,
                lead_blocker: Some(i % 20),
                lead_blocker_secs: 1,
                ..WaitAttribution::default()
            };
            p.fold(&a);
        }
        assert!(p.top_blockers.len() <= TOP_BLOCKERS);
        assert_eq!(p.jobs, 100);
    }

    #[test]
    fn profile_serde_round_trip() {
        let mut p = AttributionProfile::default();
        let a = WaitAttribution {
            capacity_secs: 10,
            policy_skip_secs: 5,
            lead_blocker: Some(3),
            lead_blocker_secs: 10,
            ..WaitAttribution::default()
        };
        p.fold(&a);
        let json = serde_json::to_string(&p).unwrap();
        let back: AttributionProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn notes_dedup_and_clear() {
        let mut n = AttrNotes::default();
        n.note_skip(JobId(4));
        n.note_skip(JobId(4));
        n.note_freeze();
        assert_eq!(n.skipped, vec![JobId(4)]);
        assert!(n.freeze);
        n.clear();
        assert!(n.skipped.is_empty());
        assert!(!n.freeze);
    }
}
