//! Differential test: the calendar [`EventQueue`] against the
//! pre-overhaul `BinaryHeap` oracle ([`reference::HeapEventQueue`]),
//! which this integration test sees through the `reference-kernels`
//! feature enabled by the crate's self dev-dependency.
//!
//! Both queues promise the same contract — pop in non-decreasing time
//! order, FIFO within an instant — so any random interleaving of pushes,
//! pops, and instant-drains must produce identical `(time, event)`
//! sequences. The operation generator deliberately mixes same-instant
//! bursts (many events at one time) with far-future outliers (times up
//! to ~10^9 s) so the calendar is forced through grow/shrink rebuilds
//! and sparse-year scans.

use elastisched_sim::event::{reference::HeapEventQueue, Event, EventQueue};
use elastisched_sim::{JobId, SimTime};
use proptest::prelude::*;

/// One step of the interleaved workload.
#[derive(Debug, Clone)]
enum Op {
    /// Push a single event at the given time (seconds).
    Push(u64),
    /// Push a burst of events all at the given time.
    Burst(u64, u8),
    /// Pop one event from both queues and compare.
    Pop,
    /// Drain the whole earliest instant from both queues and compare.
    Drain,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..6, 0u64..1_000, 2u8..20).prop_map(|(kind, t, n)| match kind {
        0 => Op::Push(t),
        // A far-future outlier that blows up the calendar span on the
        // next rebuild.
        1 => Op::Push(999_000_000 + t),
        2 => Op::Burst(t % 200, n),
        3 | 4 => Op::Pop,
        _ => Op::Drain,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random interleaved push/pop/drain: the calendar queue and the
    /// reference heap emit identical (time, event) sequences.
    #[test]
    fn calendar_matches_reference_heap(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut next_id = 0u64;
        let mut push_both = |cal: &mut EventQueue, heap: &mut HeapEventQueue, secs: u64| {
            let at = SimTime::from_secs(secs);
            let ev = Event::Arrival(JobId(next_id));
            next_id += 1;
            cal.push(at, ev.clone());
            heap.push(at, ev);
        };
        for op in &ops {
            match *op {
                Op::Push(secs) => push_both(&mut cal, &mut heap, secs),
                Op::Burst(secs, n) => {
                    for _ in 0..n {
                        push_both(&mut cal, &mut heap, secs);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
                Op::Drain => {
                    let mut got = Vec::new();
                    let mut expect = Vec::new();
                    let at = cal.drain_next_instant(&mut got);
                    prop_assert_eq!(at, heap.drain_next_instant(&mut expect));
                    prop_assert_eq!(&got, &expect);
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        // Full drain-down: every remaining event agrees.
        while let Some(expect) = heap.pop() {
            prop_assert_eq!(cal.pop(), Some(expect));
        }
        prop_assert!(cal.is_empty());
    }
}
