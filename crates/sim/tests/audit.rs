//! Always-on audit layer, end to end (`--features audit`).
//!
//! An injected capacity-ledger skew must surface as a recoverable
//! [`SimError::AuditViolation`] — not a panic — and, with the flight
//! recorder armed, leave behind a postmortem JSONL file that parses
//! back into the engine snapshot plus the recent-transition ring.

#![cfg(feature = "audit")]

use elastisched_sim::{
    read_postmortem, Duration, EccPolicy, Engine, JobId, JobSpec, JobView, Machine, SchedContext,
    Scheduler, SimError, SliceSource,
};
use std::collections::VecDeque;

/// Minimal FIFO policy: starts the head whenever it fits.
#[derive(Default)]
struct Fifo {
    queue: VecDeque<JobView>,
}

impl Scheduler for Fifo {
    fn on_arrival(&mut self, job: JobView) {
        self.queue.push_back(job);
    }

    fn on_queued_ecc(&mut self, id: JobId, num: u32, dur: Duration) {
        if let Some(j) = self.queue.iter_mut().find(|j| j.id == id) {
            j.num = num;
            j.dur = dur;
        }
    }

    fn cycle(&mut self, ctx: &mut dyn SchedContext) {
        while let Some(h) = self.queue.front() {
            if h.num <= ctx.free() {
                ctx.start(h.id).expect("fit checked");
                self.queue.pop_front();
            } else {
                break;
            }
        }
    }

    fn waiting_len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "AuditFifo"
    }
}

fn jobs() -> Vec<JobSpec> {
    (0..8).map(|i| JobSpec::batch(i + 1, i * 10, 256, 300)).collect()
}

#[test]
fn clean_run_passes_every_audit_check() {
    // Attribution on: the wait-conservation check (`sum(cause buckets)
    // == total wait`, enforced as a hard audit error under this
    // feature) runs for every completing job.
    let mut engine = Engine::new(Machine::bluegene_p(), Fifo::default(), EccPolicy::disabled());
    engine.enable_attribution();
    engine.load(&jobs(), &[]).unwrap();
    let r = engine.run().expect("a clean run must not trip the audit");
    assert_eq!(r.outcomes.len(), 8);
    assert_eq!(r.attribution.jobs, 8);
    let waited: u64 = r.outcomes.iter().map(|o| o.wait.as_secs()).sum();
    assert_eq!(r.attribution.total_secs(), waited);
}

#[test]
fn injected_capacity_skew_trips_the_audit_and_dumps_a_postmortem() {
    let path = std::env::temp_dir().join(format!(
        "elastisched-audit-postmortem-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let mut engine = Engine::new(Machine::bluegene_p(), Fifo::default(), EccPolicy::disabled());
    engine.load(&jobs(), &[]).unwrap();
    engine.enable_flight_recorder(&path);
    engine.inject_capacity_skew_for_test();
    let err = engine.run().expect_err("skewed ledger must trip the audit");
    let SimError::AuditViolation { check, detail } = &err else {
        panic!("expected AuditViolation, got {err}");
    };
    assert_eq!(*check, "capacity");
    assert!(detail.contains("procs"), "detail names the skew: {detail}");

    // The armed flight recorder dumped a parseable postmortem.
    let text = std::fs::read_to_string(&path).expect("postmortem file written");
    let (snap, events) = read_postmortem(&text).expect("postmortem parses");
    assert!(snap.reason.contains("capacity"), "{}", snap.reason);
    assert_eq!(snap.scheduler, "AuditFifo");
    assert_eq!(snap.machine_total, Machine::bluegene_p().total());
    assert!(
        !events.is_empty(),
        "the flight ring held the transitions leading up to the violation"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn streaming_folded_run_dumps_a_postmortem_on_audit_violation() {
    // The materialized test above covers `Engine::run`; a folded
    // streamed run reclaims per-job state as it goes and must still
    // leave the same dump behind when the audit trips mid-loop.
    let path = std::env::temp_dir().join(format!(
        "elastisched-audit-postmortem-streamed-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let jobs = jobs();
    let mut engine = Engine::new(Machine::bluegene_p(), Fifo::default(), EccPolicy::disabled());
    engine.enable_flight_recorder(&path);
    engine.inject_capacity_skew_for_test();
    let err = engine
        .run_streaming_folded(SliceSource::new(&jobs, &[]), &mut |_| {})
        .expect_err("skewed ledger must trip the audit on the streaming path");
    let SimError::AuditViolation { check, .. } = &err else {
        panic!("expected AuditViolation, got {err}");
    };
    assert_eq!(*check, "capacity");

    let text = std::fs::read_to_string(&path).expect("postmortem file written");
    let (snap, events) = read_postmortem(&text).expect("postmortem parses");
    assert!(snap.reason.contains("capacity"), "{}", snap.reason);
    assert_eq!(snap.scheduler, "AuditFifo");
    assert!(
        !events.is_empty(),
        "the flight ring held the transitions leading up to the violation"
    );
    let _ = std::fs::remove_file(&path);
}
