//! Engine edge cases exercised through a minimal FIFO policy.

use elastisched_sim::{
    simulate, Duration, EccKind, EccPolicy, EccSpec, JobId, JobSpec, JobView, Machine,
    SchedContext, Scheduler, SimResult, SimTime,
};
use std::collections::VecDeque;

/// Minimal FIFO policy: starts the head whenever it fits.
#[derive(Default)]
struct Fifo {
    queue: VecDeque<JobView>,
    ecc_notifications: usize,
}

impl Scheduler for Fifo {
    fn on_arrival(&mut self, job: JobView) {
        self.queue.push_back(job);
    }

    fn on_queued_ecc(&mut self, id: JobId, num: u32, dur: Duration) {
        self.ecc_notifications += 1;
        if let Some(j) = self.queue.iter_mut().find(|j| j.id == id) {
            j.num = num;
            j.dur = dur;
        }
    }

    fn cycle(&mut self, ctx: &mut dyn SchedContext) {
        while let Some(h) = self.queue.front() {
            if h.num <= ctx.free() {
                ctx.start(h.id).expect("fit checked");
                self.queue.pop_front();
            } else {
                break;
            }
        }
    }

    fn waiting_len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "FifoTest"
    }
}

fn run(jobs: &[JobSpec], eccs: &[EccSpec], policy: EccPolicy) -> SimResult {
    simulate(Machine::bluegene_p(), Fifo::default(), policy, jobs, eccs).unwrap()
}

fn finished(r: &SimResult, id: u64) -> u64 {
    r.outcomes
        .iter()
        .find(|o| o.id.0 == id)
        .unwrap()
        .finished
        .as_secs()
}

#[test]
fn actual_longer_than_estimate_is_killed_at_estimate() {
    // SWF logs contain jobs whose actual runtime exceeds the request;
    // real schedulers kill at the kill-by time. The engine must cap the
    // completion at the estimate.
    let mut j = JobSpec::batch(1, 0, 320, 100);
    j.actual = Duration::from_secs(500);
    let r = run(&[j], &[], EccPolicy::disabled());
    assert_eq!(finished(&r, 1), 100, "killed at the kill-by time");
}

#[test]
fn multiple_ecc_reschedules_keep_single_completion() {
    let jobs = vec![JobSpec::batch(1, 0, 320, 1_000)];
    let eccs = vec![
        EccSpec::extend_time(JobId(1), SimTime::from_secs(100), 200),
        EccSpec::extend_time(JobId(1), SimTime::from_secs(200), 300),
        EccSpec::reduce_time(JobId(1), SimTime::from_secs(300), 100),
    ];
    let r = run(&jobs, &eccs, EccPolicy::time_only());
    assert_eq!(r.outcomes.len(), 1, "stale completions must be discarded");
    assert_eq!(finished(&r, 1), 1_000 + 200 + 300 - 100);
    assert_eq!(r.ecc.applied_running, 3);
}

#[test]
fn ecc_before_arrival_applies_to_future_job() {
    // An ECC issued before the job's submit event (legal in a CWF file)
    // lands on the record while it is `Future`; the job arrives with the
    // adjusted duration.
    let jobs = vec![JobSpec::batch(1, 500, 320, 100)];
    let eccs = vec![EccSpec::extend_time(JobId(1), SimTime::from_secs(100), 50)];
    let r = run(&jobs, &eccs, EccPolicy::time_only());
    assert_eq!(finished(&r, 1), 500 + 150);
    assert_eq!(r.ecc.applied_queued, 1);
}

#[test]
fn queued_ecc_notifies_scheduler() {
    let jobs = vec![
        JobSpec::batch(1, 0, 320, 1_000),
        JobSpec::batch(2, 10, 320, 100), // waits behind job 1
    ];
    let eccs = vec![EccSpec::reduce_time(JobId(2), SimTime::from_secs(50), 40)];
    let mut engine = elastisched_sim::Engine::new(
        Machine::bluegene_p(),
        Fifo::default(),
        EccPolicy::time_only(),
    );
    engine.load(&jobs, &eccs).unwrap();
    let r = engine.run().unwrap();
    let o2 = r.outcomes.iter().find(|o| o.id.0 == 2).unwrap();
    assert_eq!(o2.runtime, Duration::from_secs(60));
}

#[test]
fn reduce_time_on_queued_job_floors_at_one_second() {
    let jobs = vec![
        JobSpec::batch(1, 0, 320, 100),
        JobSpec::batch(2, 10, 320, 50),
    ];
    let eccs = vec![EccSpec::reduce_time(JobId(2), SimTime::from_secs(20), 10_000)];
    let r = run(&jobs, &eccs, EccPolicy::time_only());
    let o2 = r.outcomes.iter().find(|o| o.id.0 == 2).unwrap();
    assert_eq!(o2.runtime, Duration::from_secs(1));
}

#[test]
fn simultaneous_completion_and_arrival_share_one_cycle() {
    // Job 2 arrives exactly when job 1 finishes: it must start at that
    // same instant (release-before-allocate at equal timestamps).
    let jobs = vec![
        JobSpec::batch(1, 0, 320, 100),
        JobSpec::batch(2, 100, 320, 10),
    ];
    let r = run(&jobs, &[], EccPolicy::disabled());
    let o2 = r.outcomes.iter().find(|o| o.id.0 == 2).unwrap();
    assert_eq!(o2.started.as_secs(), 100);
    assert_eq!(o2.wait, Duration::ZERO);
}

#[test]
fn dedicated_ecc_while_queued_in_dedicated_state() {
    // A dedicated job receives an ET while waiting for its start time.
    let jobs = vec![JobSpec::dedicated(1, 0, 320, 100, 500)];
    let eccs = vec![EccSpec::extend_time(JobId(1), SimTime::from_secs(100), 77)];
    let r = run(&jobs, &eccs, EccPolicy::time_only());
    // FIFO ignores the requested start (it has no dedicated queue), but
    // the duration change must still land.
    assert_eq!(r.outcomes[0].runtime, Duration::from_secs(177));
}

#[test]
fn result_records_arrival_span_and_ecc_stats() {
    let jobs = vec![
        JobSpec::batch(1, 10, 32, 100),
        JobSpec::batch(2, 500, 32, 100),
        JobSpec::batch(3, 300, 32, 100),
    ];
    let eccs = vec![
        EccSpec::extend_time(JobId(9), SimTime::from_secs(50), 10), // dangling
        EccSpec::extend_time(JobId(1), SimTime::from_secs(50), 10),
    ];
    let r = run(&jobs, &eccs, EccPolicy::time_only());
    assert_eq!(r.first_arrival, SimTime::from_secs(10));
    assert_eq!(r.last_arrival, SimTime::from_secs(500));
    assert_eq!(r.ecc.dropped_stale, 1);
    assert_eq!(r.ecc.applied(), 1);
}

#[test]
fn zero_amount_time_ecc_is_harmless() {
    let jobs = vec![JobSpec::batch(1, 0, 320, 100)];
    let eccs = vec![EccSpec::extend_time(JobId(1), SimTime::from_secs(10), 0)];
    let r = run(&jobs, &eccs, EccPolicy::time_only());
    assert_eq!(finished(&r, 1), 100);
}

#[test]
fn resource_ecc_rounds_to_allocation_unit() {
    // EP of 1 processor rounds up to a full 32-processor node group.
    let jobs = vec![JobSpec::batch(1, 0, 64, 100)];
    let eccs = vec![EccSpec {
        job: JobId(1),
        issue_at: SimTime::from_secs(50),
        kind: EccKind::ExtendProcs,
        amount: 1,
    }];
    let r = run(&jobs, &eccs, EccPolicy::with_resource_elasticity());
    assert_eq!(r.outcomes[0].num, 96);
}

#[test]
fn resource_ecc_denied_when_no_capacity() {
    let jobs = vec![JobSpec::batch(1, 0, 320, 100), JobSpec::batch(2, 0, 32, 10)];
    // Machine full (well, job 2 can't fit beside job 1): grow request on
    // job 1 beyond the machine must be dropped, not partially applied.
    let eccs = vec![EccSpec {
        job: JobId(1),
        issue_at: SimTime::from_secs(50),
        kind: EccKind::ExtendProcs,
        amount: 32,
    }];
    let r = run(&jobs, &eccs, EccPolicy::with_resource_elasticity());
    let o1 = r.outcomes.iter().find(|o| o.id.0 == 1).unwrap();
    assert_eq!(o1.num, 320);
    assert_eq!(r.ecc.dropped_stale, 1);
}

#[test]
fn wakeup_requests_fire_cycles() {
    // A scheduler that asks for a wakeup and counts its cycles.
    #[derive(Default)]
    struct WakeupCounter {
        cycles: std::rc::Rc<std::cell::Cell<usize>>,
        asked: bool,
    }
    impl Scheduler for WakeupCounter {
        fn on_arrival(&mut self, _job: JobView) {}
        fn cycle(&mut self, ctx: &mut dyn SchedContext) {
            self.cycles.set(self.cycles.get() + 1);
            if !self.asked {
                self.asked = true;
                ctx.request_wakeup(SimTime::from_secs(1_000));
            }
        }
        fn waiting_len(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "WakeupCounter"
        }
    }
    let counter = std::rc::Rc::new(std::cell::Cell::new(0));
    let sched = WakeupCounter {
        cycles: counter.clone(),
        asked: false,
    };
    let mut engine = elastisched_sim::Engine::new(
        Machine::bluegene_p(),
        sched,
        EccPolicy::disabled(),
    );
    // One job so there is at least one event; the job never starts (the
    // policy ignores it)… that would starve. Give it zero jobs instead:
    engine.load(&[], &[]).unwrap();
    let r = engine.run().unwrap();
    assert_eq!(r.outcomes.len(), 0);
    // No events at all → no cycles; the wakeup request is never made.
    assert_eq!(counter.get(), 0);
}

#[test]
fn empty_workload_completes_trivially() {
    let r = run(&[], &[], EccPolicy::disabled());
    assert_eq!(r.outcomes.len(), 0);
    assert_eq!(r.makespan, SimTime::ZERO);
    assert_eq!(r.mean_utilization(), 0.0);
}

#[test]
fn ten_thousand_job_run_completes() {
    // The paper: "We also ran simulations for a couple of scenarios with
    // 10,000 jobs and found no significant difference" — at minimum the
    // engine must drain such runs.
    let jobs: Vec<JobSpec> = (0..10_000u64)
        .map(|i| JobSpec::batch(i + 1, i * 3, 32 * (1 + (i as u32 * 13) % 10), 20 + i % 400))
        .collect();
    let r = run(&jobs, &[], EccPolicy::disabled());
    assert_eq!(r.outcomes.len(), 10_000);
    assert!(r.mean_utilization() > 0.0);
}

#[test]
fn sampling_records_state_series() {
    let jobs: Vec<JobSpec> = (0..20)
        .map(|i| JobSpec::batch(i + 1, i * 100, 320, 150))
        .collect();
    let mut engine = elastisched_sim::Engine::new(
        Machine::bluegene_p(),
        Fifo::default(),
        EccPolicy::disabled(),
    );
    engine.enable_sampling(Duration::from_secs(200));
    engine.load(&jobs, &[]).unwrap();
    let r = engine.run().unwrap();
    assert!(!r.samples.is_empty());
    // Samples are at least the interval apart and time-ordered.
    for w in r.samples.windows(2) {
        assert!(w[1].at.saturating_since(w[0].at) >= Duration::from_secs(200));
    }
    for s in &r.samples {
        assert!(s.free <= 320);
        assert_eq!(s.running + usize::from(s.free == 320), s.running + usize::from(s.free == 320));
    }
    // Without sampling the series is empty.
    let r2 = simulate(
        Machine::bluegene_p(),
        Fifo::default(),
        EccPolicy::disabled(),
        &jobs,
        &[],
    )
    .unwrap();
    assert!(r2.samples.is_empty());
}

/// A scheduler that misbehaves: double-starts and references unknown
/// jobs. The engine must answer with errors, never corrupt state.
#[test]
fn engine_rejects_misbehaving_scheduler_calls() {
    #[derive(Default)]
    struct Hostile {
        phase: u32,
    }
    impl Scheduler for Hostile {
        fn on_arrival(&mut self, _job: JobView) {}
        fn cycle(&mut self, ctx: &mut dyn SchedContext) {
            // Unknown job: always an error.
            let e = ctx.start(JobId(999)).unwrap_err();
            assert!(matches!(e, elastisched_sim::StartError::UnknownJob(_)));
            if self.phase == 0 && ctx.free() == 320 {
                self.phase = 1;
                // Legitimate start, then a double start of the same job.
                ctx.start(JobId(1)).unwrap();
                let e = ctx.start(JobId(1)).unwrap_err();
                assert!(matches!(e, elastisched_sim::StartError::NotWaiting(_)));
                // Oversized for the remaining capacity.
                let e = ctx.start(JobId(2)).unwrap_err();
                assert!(matches!(e, elastisched_sim::StartError::Machine(_)));
            } else if self.phase == 1 && ctx.free() >= 128 {
                // After job 1 finished, job 2 fits.
                self.phase = 2;
                ctx.start(JobId(2)).unwrap();
            }
        }
        fn waiting_len(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "Hostile"
        }
    }
    let jobs = vec![JobSpec::batch(1, 0, 256, 100), JobSpec::batch(2, 0, 128, 50)];
    let r = simulate(
        Machine::bluegene_p(),
        Hostile::default(),
        EccPolicy::disabled(),
        &jobs,
        &[],
    )
    .unwrap();
    assert_eq!(r.outcomes.len(), 2);
}

/// A scheduler that never starts anything must yield a starvation error,
/// not hang or silently succeed.
#[test]
fn starvation_is_reported() {
    struct Lazy {
        queued: usize,
    }
    impl Scheduler for Lazy {
        fn on_arrival(&mut self, _job: JobView) {
            self.queued += 1;
        }
        fn cycle(&mut self, _ctx: &mut dyn SchedContext) {}
        fn waiting_len(&self) -> usize {
            self.queued
        }
        fn name(&self) -> &'static str {
            "Lazy"
        }
    }
    let jobs = vec![JobSpec::batch(1, 0, 32, 10)];
    let err = simulate(
        Machine::bluegene_p(),
        Lazy { queued: 0 },
        EccPolicy::disabled(),
        &jobs,
        &[],
    )
    .unwrap_err();
    assert_eq!(err, elastisched_sim::SimError::Starvation { waiting: 1 });
}
