//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the derive input token stream (no `syn`/`quote`
//! available offline) and emits impls of the vendored `serde` crate's
//! `Serialize`/`Deserialize` traits. Supports exactly the shapes this
//! workspace uses:
//!
//! - named-field structs (with optional `#[serde(transparent)]` and
//!   per-field `#[serde(default)]`),
//! - tuple structs (single-field = newtype, forwarded like upstream),
//! - unit structs,
//! - enums with unit, newtype, tuple, and struct variants (externally
//!   tagged, matching upstream's default JSON shape).
//!
//! Generics are intentionally unsupported and reported as a compile
//! error, since no derived type in the workspace is generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
        transparent: bool,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Attributes preceding an item/field/variant; returns (serde flags).
struct Attrs {
    transparent: bool,
    default: bool,
}

fn take_attrs(toks: &[TokenTree], i: &mut usize) -> Attrs {
    let mut attrs = Attrs {
        transparent: false,
        default: false,
    };
    while *i + 1 < toks.len() {
        match (&toks[*i], &toks[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for t in args.stream() {
                                if let TokenTree::Ident(flag) = t {
                                    match flag.to_string().as_str() {
                                        "transparent" => attrs.transparent = true,
                                        "default" => attrs.default = true,
                                        _ => {}
                                    }
                                }
                            }
                        }
                    }
                }
                *i += 2;
            }
            _ => break,
        }
    }
    attrs
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = take_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);

    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item::NamedStruct {
                    name,
                    fields,
                    transparent: attrs.transparent,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok(Item::UnitStruct { name })
            }
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(g.stream())?,
                })
            }
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Skip a type (or discriminant) until a top-level comma, tracking
/// angle-bracket depth so `HashMap<String, f64>` stays one field.
fn skip_to_field_sep(toks: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => break,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        skip_to_field_sep(&toks, &mut i);
        i += 1; // past the comma (or end)
        fields.push(Field {
            name,
            default: attrs.default,
        });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        let _ = take_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_to_field_sep(&toks, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let _ = take_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip optional discriminant and the separating comma.
        skip_to_field_sep(&toks, &mut i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct {
            name,
            fields,
            transparent,
        } => {
            let body = if *transparent && fields.len() == 1 {
                format!(
                    "::serde::Serialize::to_value(&self.{})",
                    fields[0].name
                )
            } else {
                let pushes: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "__m.push(({:?}.to_string(), \
                             ::serde::Serialize::to_value(&self.{})));",
                            f.name, f.name
                        )
                    })
                    .collect();
                format!(
                    "{{ let mut __m: Vec<(String, ::serde::Value)> = \
                     Vec::with_capacity({}); {} ::serde::Value::Map(__m) }}",
                    fields.len(),
                    pushes
                )
            };
            impl_ser(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
            };
            impl_ser(name, &body)
        }
        Item::UnitStruct { name } => impl_ser(name, "::serde::Value::Null"),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| ser_variant_arm(name, v))
                .collect();
            impl_ser(name, &format!("match self {{ {arms} }}"))
        }
    }
}

fn ser_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{enum_name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
        ),
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{vname}(__f0) => ::serde::Value::Map(vec![\
             ({vname:?}.to_string(), ::serde::Serialize::to_value(__f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let elems: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Map(vec![\
                 ({vname:?}.to_string(), ::serde::Value::Seq(vec![{}]))]),",
                binds.join(", "),
                elems.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let binds: Vec<String> =
                fields.iter().map(|f| f.name.clone()).collect();
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {} }} => ::serde::Value::Map(vec![\
                 ({vname:?}.to_string(), ::serde::Value::Map(vec![{}]))]),",
                binds.join(", "),
                pushes.join(", ")
            )
        }
    }
}

fn impl_ser(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct {
            name,
            fields,
            transparent,
        } => {
            let body = if *transparent && fields.len() == 1 {
                format!(
                    "Ok({name} {{ {}: ::serde::Deserialize::from_value(__v)? }})",
                    fields[0].name
                )
            } else {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let missing = if f.default {
                            "::core::default::Default::default()".to_string()
                        } else {
                            format!(
                                "return Err(::serde::Error::custom(\
                                 concat!(\"missing field `\", {:?}, \"`\")))",
                                f.name
                            )
                        };
                        format!(
                            "{}: match ::serde::find_field(__m, {:?}) {{ \
                             Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                             None => {missing}, }}",
                            f.name, f.name
                        )
                    })
                    .collect();
                format!(
                    "let __m = __v.as_map().ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"expected map for \", \
                     {name:?})))?; Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            };
            impl_de(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| {
                        format!("::serde::Deserialize::from_value(&__s[{i}])?")
                    })
                    .collect();
                format!(
                    "let __s = __v.as_seq().ok_or_else(|| \
                     ::serde::Error::custom(\"expected sequence\"))?; \
                     if __s.len() != {arity} {{ return Err(::serde::Error::custom(\
                     \"wrong tuple length\")); }} Ok({name}({}))",
                    elems.join(", ")
                )
            };
            impl_de(name, &body)
        }
        Item::UnitStruct { name } => impl_de(name, &format!("Ok({name})")),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .map(|v| de_variant_arm(name, v))
                .collect();
            let body = format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} \
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))), }}, \
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                 let (__tag, __inner) = &__m[0]; \
                 match __tag.as_str() {{ {data_arms} \
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))), }} }}, \
                 __other => Err(::serde::Error::custom(format!(\
                 \"bad representation for {name}: {{__other:?}}\"))), }}"
            );
            impl_de(name, &body)
        }
    }
}

fn de_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => unreachable!("unit variants handled separately"),
        VariantKind::Tuple(1) => format!(
            "{vname:?} => Ok({enum_name}::{vname}(\
             ::serde::Deserialize::from_value(__inner)?)),"
        ),
        VariantKind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "{vname:?} => {{ let __s = __inner.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(\"expected sequence variant\"))?; \
                 if __s.len() != {n} {{ return Err(::serde::Error::custom(\
                 \"wrong variant arity\")); }} Ok({enum_name}::{vname}({})) }},",
                elems.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let missing = if f.default {
                        "::core::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return Err(::serde::Error::custom(\
                             concat!(\"missing field `\", {:?}, \"`\")))",
                            f.name
                        )
                    };
                    format!(
                        "{}: match ::serde::find_field(__m2, {:?}) {{ \
                         Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                         None => {missing}, }}",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "{vname:?} => {{ let __m2 = __inner.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"expected struct variant map\"))?; \
                 Ok({enum_name}::{vname} {{ {} }}) }},",
                inits.join(", ")
            )
        }
    }
}

fn impl_de(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
