//! Offline stand-in for `serde_json`, built on the vendored `serde`
//! [`Value`] model: a pretty/compact JSON emitter plus a recursive
//! descent parser. Floats are printed with Rust's shortest-round-trip
//! `Display`, which gives the `float_roundtrip` guarantee the workspace
//! opts into; non-finite floats are emitted as `null` (upstream
//! serde_json errors instead, but the metrics pipeline prefers output).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Serialize `value` as compact single-line JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent, like
/// upstream serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            write_container(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(out, &items[i], indent, depth + 1);
            })
        }
        Value::Map(entries) => {
            write_container(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_escaped(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            })
        }
    }
}

fn write_container(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display is shortest-round-trip; add a `.0` when the result
    // would read back as an integer, matching upstream's float output.
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32))
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!(
                "trailing characters at byte {}",
                self.pos
            )));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null").map(|_| Value::Null),
            b't' => self.eat_keyword("true").map(|_| Value::Bool(true)),
            b'f' => self.eat_keyword("false").map(|_| Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(Error::new)?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("short \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(Error::new)?,
                                16,
                            )
                            .map_err(Error::new)?;
                            s.push(
                                char::from_u32(code).ok_or_else(|| {
                                    Error::new("invalid \\u escape")
                                })?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape `\\{}`",
                                *other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(Error::new)?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        let x: f64 = from_str("1.5").unwrap();
        assert_eq!(x, 1.5);
        let y: u64 = from_str(" 99 ").unwrap();
        assert_eq!(y, 99);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &f in &[0.1, 1.0 / 3.0, 1e-300, 123456.789012345, f64::MAX] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let s = to_string_pretty(&v).unwrap();
        let back: Vec<Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
        let opt: Option<u32> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn pretty_layout_matches_upstream_shape() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\n\t\u{1}→";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<u32>("{").is_err());
    }
}
