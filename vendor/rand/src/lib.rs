//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `rand 0.8`:
//! [`RngCore`], [`SeedableRng`], the extension trait [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), and [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64). Streams are deterministic for a given seed,
//! which is all the workspace relies on; they do **not** match upstream
//! `rand`'s ChaCha streams bit-for-bit.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the "standard" distribution of their type.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draw one value from `rng`; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        lo + (hi - lo) * u
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution
    /// (floats uniform in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded with SplitMix64 (not upstream rand's ChaCha12, but a
    /// high-quality deterministic stream all the same).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..=9);
            assert!((3..=9).contains(&x));
            let y = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = r.gen_range(5u64..6);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn mean_is_near_half() {
        let mut r = StdRng::seed_from_u64(4);
        let total: f64 = (0..100_000).map(|_| r.gen::<f64>()).sum();
        let mean = total / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
