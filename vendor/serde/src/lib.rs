//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors a miniature serde: instead of upstream's visitor-based
//! serializer/deserializer pair, this models serialization through one
//! concrete tree type, [`Value`]. [`Serialize`] renders any value into
//! a `Value`; [`Deserialize`] rebuilds a value from one. The companion
//! `serde_json` stub converts `Value` to and from JSON text, and the
//! vendored `serde_derive` proc-macro generates the same externally
//! tagged representations real serde uses, so JSON produced here is
//! shaped exactly like upstream's.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data-model tree every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `None` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Negative integer (non-negative integers use [`Value::U64`]).
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (array / tuple / Vec).
    Seq(Vec<Value>),
    /// Key-ordered map (struct fields, in declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map access helper.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence access helper.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String access helper.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Find `key` in a struct's field list (first match wins).
pub fn find_field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a human-readable message trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Render `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild a value, reporting shape mismatches as [`Error`]s.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

// ---------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

fn int_of(v: &Value) -> Option<i128> {
    match v {
        Value::U64(u) => Some(*u as i128),
        Value::I64(i) => Some(*i as i128),
        Value::F64(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(63) => {
            Some(*f as i128)
        }
        _ => None,
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let i = int_of(v).ok_or_else(|| {
                    Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v
                    ))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!(
                        concat!("integer {} out of range for ", stringify!($t)), i
                    ))
                })
            }
        }
    )*};
}
impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<(), Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {v:?}")))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items.try_into().map_err(|_| {
            Error::custom(format!("expected array of {N}, got {got} elements"))
        })
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), Error> {
                let seq = v.as_seq().ok_or_else(|| {
                    Error::custom(format!("expected {}-tuple, got {v:?}", $len))
                })?;
                if seq.len() != $len {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got {} elements", $len, seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$n])?,)+))
            }
        }
    )*};
}
impl_de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<String, V>, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {v:?}")))?;
        map.iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<HashMap<String, V>, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {v:?}")))?;
        map.iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}
