//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the one API surface the workspace uses: an unbounded MPMC
//! [`channel`] with disconnect semantics, implemented with a
//! `Mutex<VecDeque>` + `Condvar`. Correct and simple rather than
//! lock-free; the sweep workloads it feeds are coarse-grained enough
//! that channel overhead is irrelevant.

pub mod channel {
    //! Unbounded multi-producer multi-consumer FIFO channel.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clone freely.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only when every receiver has dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking until a value arrives or every sender has
        /// dropped (then drains remaining values before erroring).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).unwrap();
            }
        }

        /// Non-blocking variant: `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn drains_after_senders_drop() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = channel::unbounded::<usize>();
        let (out_tx, out_rx) = channel::unbounded::<usize>();
        thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        out_tx.send(v * 2).unwrap();
                    }
                });
            }
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(out_tx);
            drop(rx);
            let mut got: Vec<usize> =
                std::iter::from_fn(|| out_rx.recv().ok()).collect();
            got.sort_unstable();
            let expect: Vec<usize> = (0..1000).map(|i| i * 2).collect();
            assert_eq!(got, expect);
        });
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }
}
