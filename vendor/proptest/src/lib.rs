//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range and
//! tuple strategies, `prop::collection::vec`, `prop::bool::ANY`, and
//! `prop_map`. Failing cases are reported by panic with the generated
//! inputs' `Debug` representation; there is **no shrinking** — the
//! failing case prints as drawn. Case generation is deterministic per
//! test name, so failures reproduce across runs.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (`cases` = iterations per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for one property, seeded from the test's name so
/// every test draws an independent, reproducible stream.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: std::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: std::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// Always produce a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with random length in `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generate `Vec`s of `element` values with length drawn from
        /// `size` (half-open, like upstream's `SizeRange`).
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.size.is_empty() {
                    self.size.start
                } else {
                    rng.gen_range(self.size.clone())
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Uniform `true`/`false`.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.gen_bool(0.5)
            }
        }
    }
}

pub mod prelude {
    //! Everything a property-test module needs in scope.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Assert inside a property; failure panics with the formatted message
/// (upstream records and shrinks — this stand-in just fails the test).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `cases` random draws. Write `#[test]`
/// explicitly on each property, exactly as with upstream proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __dbg = format!(
                    concat!("case {} of ", stringify!($name), ":" $(, " ", stringify!($arg), "={:?}")*),
                    __case $(, &$arg)*
                );
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(__panic) = __result {
                    eprintln!("proptest failure: {__dbg}");
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}
