//! Offline stand-in for the `criterion` crate.
//!
//! Provides the configuration/builder API the workspace's benches use
//! (`sample_size`, `measurement_time`, `warm_up_time`, groups,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/
//! `criterion_main!`) over a simple measurement loop: per sample, the
//! routine is timed over enough iterations to fill the per-sample
//! budget, and the **median ns/iter** across samples is reported to
//! stdout. No statistical analysis, plots, or saved baselines.
//!
//! Command-line filters work the way cargo passes them:
//! `cargo bench -p elastisched-bench <substring>` runs only benchmarks
//! whose `group/id` name contains the substring.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver and configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-') && a != "bench")
            .collect();
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filters,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Configure defaults from the command line (no-op here; filters
    /// are always read from the command line).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmark a single routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.full_name(), f);
        self
    }

    fn matches_filter(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f.as_str()))
    }

    fn run_one<F>(&self, full_name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches_filter(full_name) {
            return;
        }
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                until: Instant::now() + self.warm_up_time,
            },
            samples: Vec::new(),
            sample_budget: self.measurement_time / self.sample_size as u32,
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{full_name:<50} (no samples: routine never called iter)");
            return;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{full_name:<50} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
    }

    /// Final-summary hook (report output is printed as benches run).
    pub fn final_summary(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f`, passing it a reference to `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full_name());
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full_name());
        self.criterion.run_one(&full, f);
        self
    }

    /// End the group (upstream flushes reports here; no-op).
    pub fn finish(self) {}
}

/// A benchmark's identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier with a function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

enum Mode {
    WarmUp { until: Instant },
    Measure,
}

/// Passed to benchmark closures; call [`iter`](Bencher::iter) with the
/// routine to measure.
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
    sample_budget: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Measure `routine`: warm up, then time `target_samples` samples
    /// and record ns/iter for each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up deadline passes, timing one
        // iteration to pick a per-sample iteration count.
        let mut per_iter = Duration::from_nanos(1);
        if let Mode::WarmUp { until } = self.mode {
            let mut iters: u64 = 0;
            let start = Instant::now();
            while Instant::now() < until || iters == 0 {
                black_box(routine());
                iters += 1;
            }
            per_iter = start.elapsed() / iters as u32;
            self.mode = Mode::Measure;
        }
        let budget = self.sample_budget.max(Duration::from_micros(200));
        let iters_per_sample = (budget.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, u64::MAX as u128) as u64;
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

/// Define a set of benchmark functions plus the `Criterion` config
/// used to run them.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` to run one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
