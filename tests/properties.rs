//! Property-based integration tests: random workloads against every
//! scheduler, checking the simulation's conservation laws and the
//! schedulers' contracts.

use elastisched::prelude::*;
use elastisched_sched::SchedParams;
use proptest::prelude::*;

/// Random job streams on the BlueGene/P machine (sizes are multiples of
/// 32 in [32, 320]).
fn arb_jobs() -> impl Strategy<Value = Vec<JobSpec>> {
    let job = (
        0u64..2_000,   // submit
        1u32..=10,     // size in units
        1u64..500,     // duration
        prop::bool::ANY, // dedicated?
        1u64..1_500,   // dedicated start offset
    );
    prop::collection::vec(job, 1..40).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (submit, units, dur, dedicated, offset))| {
                if dedicated {
                    JobSpec::dedicated(i as u64 + 1, submit, units * 32, dur, submit + offset)
                } else {
                    JobSpec::batch(i as u64 + 1, submit, units * 32, dur)
                }
            })
            .collect()
    })
}

/// Random ECCs referencing jobs 1..=n (some may miss).
fn arb_eccs(max_job: u64) -> impl Strategy<Value = Vec<EccSpec>> {
    let ecc = (
        1u64..=max_job + 3, // job id, possibly dangling
        0u64..3_000,        // issue time
        0u8..4,             // kind
        1u64..400,          // amount
    );
    prop::collection::vec(ecc, 0..15).prop_map(|raw| {
        raw.into_iter()
            .map(|(job, issue, kind, amount)| EccSpec {
                job: JobId(job),
                issue_at: SimTime::from_secs(issue),
                kind: match kind {
                    0 => EccKind::ExtendTime,
                    1 => EccKind::ReduceTime,
                    2 => EccKind::ExtendProcs,
                    _ => EccKind::ReduceProcs,
                },
                amount,
            })
            .collect()
    })
}

const ALGOS: [Algorithm; 13] = [
    Algorithm::Fcfs,
    Algorithm::Conservative,
    Algorithm::Easy,
    Algorithm::Los,
    Algorithm::DelayedLos,
    Algorithm::EasyD,
    Algorithm::LosD,
    Algorithm::HybridLos,
    Algorithm::Adaptive,
    Algorithm::Sjf,
    Algorithm::SjfBf,
    Algorithm::SmallestFirstBf,
    Algorithm::LargestFirstBf,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every scheduler completes every job exactly once, and the busy
    /// integral equals the total work done.
    #[test]
    fn conservation_laws(jobs in arb_jobs(), algo_idx in 0usize..ALGOS.len()) {
        let algo = ALGOS[algo_idx];
        let w = Workload::from_jobs(jobs.clone());
        let exp = Experiment {
            algorithm: algo,
            params: SchedParams::with_cs(3),
            machine: MachineSpec::BLUEGENE_P,
            timeline: None,
            attribution: false,
            reconfig_cost: None,
        };
        let r = exp.run_raw(&w).expect("simulation completes");
        prop_assert_eq!(r.outcomes.len(), jobs.len());
        // Each job completed exactly once.
        let mut seen: Vec<u64> = r.outcomes.iter().map(|o| o.id.0).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), jobs.len());
        // Work conservation.
        let work: f64 = r
            .outcomes
            .iter()
            .map(|o| o.num as f64 * o.runtime.as_secs_f64())
            .sum();
        prop_assert!((r.busy_area - work).abs() < 1e-6);
        // Utilization in [0, 1].
        let util = r.mean_utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&util));
        // Independent sweep-line oracle: the schedule is physically
        // feasible and the engine's busy-area bookkeeping agrees.
        // (Batch-only schedulers legitimately ignore requested starts, so
        // that check only applies to heterogeneous-capable algorithms.)
        let violations: Vec<_> = elastisched_metrics::validate_schedule(&r.outcomes, 320)
            .into_iter()
            .filter(|v| {
                algo.heterogeneous()
                    || !matches!(
                        v,
                        elastisched_metrics::Violation::StartedBeforeRequestedStart { .. }
                    )
            })
            .collect();
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
        let occ = elastisched_metrics::occupancy(&r.outcomes);
        prop_assert!(occ.peak <= 320);
        prop_assert!((occ.busy_area - r.busy_area).abs() < 1e-6);
    }

    /// No job ever starts before it is eligible; dedicated jobs never
    /// start before their requested start under heterogeneous-capable
    /// schedulers.
    #[test]
    fn start_time_contracts(jobs in arb_jobs(), algo_idx in 0usize..3) {
        let algo = [Algorithm::EasyD, Algorithm::LosD, Algorithm::HybridLos][algo_idx];
        let w = Workload::from_jobs(jobs);
        let exp = Experiment::new(algo);
        let r = exp.run_raw(&w).expect("simulation completes");
        for o in &r.outcomes {
            prop_assert!(o.started >= o.submit, "{:?} started before submit", o.id);
            if let Some(start) = o.requested_start {
                prop_assert!(
                    o.started >= start,
                    "{:?} started at {} before requested {}",
                    o.id,
                    o.started.as_secs(),
                    start.as_secs()
                );
            }
            prop_assert_eq!(o.finished, o.started + o.runtime);
        }
    }

    /// ECC accounting is conserved: every issued command is counted
    /// exactly once (applied, policy-dropped, or stale), under both the
    /// disabled and full-elasticity policies.
    #[test]
    fn ecc_accounting(jobs in arb_jobs(), eccs_seed in arb_eccs(40)) {
        let n = jobs.len() as u64;
        let eccs: Vec<EccSpec> = eccs_seed
            .into_iter()
            .map(|mut e| {
                // Keep some dangling ids to exercise the stale path.
                if e.job.0 > n + 2 {
                    e.job = JobId(n + 3);
                }
                e
            })
            .collect();
        let w = Workload { jobs, eccs: eccs.clone() };
        for policy_elastic in [false, true] {
            let algo = if policy_elastic {
                Algorithm::DelayedLosE
            } else {
                Algorithm::DelayedLos
            };
            let r = Experiment::new(algo).run_raw(&w).expect("completes");
            let counted = r.ecc.applied_running
                + r.ecc.applied_queued
                + r.ecc.dropped_policy
                + r.ecc.dropped_stale;
            prop_assert_eq!(counted, eccs.len() as u64);
            if !policy_elastic {
                prop_assert_eq!(r.ecc.applied(), 0);
            }
        }
    }

    /// Resource-dimension elasticity never oversubscribes and never
    /// shrinks a job below one allocation unit.
    #[test]
    fn resource_elasticity_bounds(jobs in arb_jobs(), eccs in arb_eccs(40)) {
        let w = Workload { jobs, eccs };
        let scheduler = elastisched_sched::DelayedLos::new();
        let mut engine = elastisched_sim::Engine::new(
            Machine::bluegene_p(),
            scheduler,
            EccPolicy::with_resource_elasticity(),
        );
        engine.load(&w.jobs, &w.eccs).expect("valid workload");
        let r = engine.run().expect("simulation completes");
        for o in &r.outcomes {
            prop_assert!(o.num >= 32 && o.num <= 320);
            prop_assert_eq!(o.num % 32, 0);
        }
    }

    /// The CWF text round-trip is the identity on generated workloads.
    #[test]
    fn cwf_roundtrip_identity(seed in 0u64..500, ps in 0.0f64..=1.0, pd in 0.0f64..=1.0) {
        let w = generate(
            &GeneratorConfig::paper_heterogeneous(ps, pd)
                .with_paper_eccs()
                .with_jobs(30)
                .with_seed(seed),
        );
        let text = CwfFile::from_workload(&w).to_text();
        let back = CwfFile::parse(&text).expect("parses").to_workload();
        prop_assert_eq!(w, back);
    }
}
