//! Integration tests for the trace pipeline: generator → CWF text →
//! parser → simulator, and the figure-reproduction harness.

use elastisched::figures::{self, ReproConfig};
use elastisched::prelude::*;

#[test]
fn cwf_roundtrip_preserves_simulation_results() {
    let mut w = generate(
        &GeneratorConfig::paper_heterogeneous(0.5, 0.4)
            .with_paper_eccs()
            .with_jobs(150)
            .with_seed(77),
    );
    w.scale_to_load(320, 0.9);

    let text = CwfFile::from_workload(&w).to_text();
    let reparsed = CwfFile::parse(&text).expect("round-trip parse").to_workload();
    assert_eq!(w, reparsed, "CWF round-trip must be lossless");

    let direct = Experiment::new(Algorithm::HybridLosE).run(&w).unwrap();
    let via_text = Experiment::new(Algorithm::HybridLosE).run(&reparsed).unwrap();
    assert_eq!(direct, via_text);
}

#[test]
fn swf_files_are_valid_cwf_inputs() {
    let w = generate(&GeneratorConfig::paper_batch(0.5).with_jobs(50).with_seed(3));
    // Write as plain SWF (18 fields), read back through the CWF parser.
    let mut swf = SwfFile::default();
    for j in &w.jobs {
        swf.records.push(elastisched_workload::SwfRecord::synthetic(
            j.id.0,
            j.submit.as_secs(),
            j.num,
            j.actual.as_secs(),
            j.dur.as_secs(),
        ));
    }
    let parsed = CwfFile::parse(&swf.to_text()).expect("SWF is valid CWF");
    let w2 = parsed.to_workload();
    assert_eq!(w2.len(), 50);
    assert!(w2.eccs.is_empty());
    let m = Experiment::new(Algorithm::Easy).run(&w2).unwrap();
    assert_eq!(m.jobs, 50);
}

#[test]
fn quick_figure_harness_produces_consistent_shapes() {
    let cfg = ReproConfig {
        n_jobs: 80,
        replications: 1,
        base_seed: 5,
        loads: vec![0.8],
        cs_values: vec![4],
    };
    let f7 = figures::fig7(&cfg);
    assert_eq!(f7.series.len(), 3);
    let t4 = figures::table4(&f7);
    // One column per baseline, three metric rows, finite values.
    assert_eq!(t4.baselines.len(), 2);
    assert_eq!(t4.rows.len(), 3);
    for (_, vals) in &t4.rows {
        assert!(vals.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn figure_data_serializes_to_json_and_csv() {
    let cfg = ReproConfig {
        n_jobs: 60,
        replications: 1,
        base_seed: 6,
        loads: vec![0.7],
        cs_values: vec![3],
    };
    let fig = figures::fig5(&cfg);
    let json = serde_json::to_string(&fig).expect("figure serializes");
    let back: elastisched::Figure = serde_json::from_str(&json).expect("figure deserializes");
    assert_eq!(back, fig);
    let csv = elastisched::report::figure_to_csv(&fig);
    // Header + one row per (series × point).
    let rows: usize = fig.series.iter().map(|s| s.points.len()).sum();
    assert_eq!(csv.lines().count(), rows + 1);
}

#[test]
fn calibration_is_stable_across_loads() {
    let base = GeneratorConfig::paper_batch(0.5).with_jobs(200);
    for load in [0.5, 0.75, 1.0] {
        let w = elastisched::calibrated_workload(&base, MachineSpec::BLUEGENE_P, load, 9);
        assert!((w.offered_load(320) - load).abs() < 0.02);
    }
}

#[test]
fn sdsc_like_trace_runs_under_easy_and_los() {
    let base = GeneratorConfig {
        n_jobs: 150,
        ..GeneratorConfig::sdsc_like()
    };
    let w = elastisched::calibrated_workload(&base, MachineSpec::SDSC_SP2, 0.85, 4);
    for algo in [Algorithm::Easy, Algorithm::Los] {
        let m = Experiment::new(algo)
            .on_machine(MachineSpec::SDSC_SP2)
            .run(&w)
            .unwrap();
        assert_eq!(m.jobs, 150, "{algo}");
    }
}
