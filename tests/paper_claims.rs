//! Integration tests for the paper's qualitative claims, spanning the
//! whole stack (workload generator → schedulers → engine → metrics).

use elastisched::prelude::*;
use elastisched_sched::SchedParams;

fn batch_workload(ps: f64, load: f64, seed: u64, n: usize) -> Workload {
    let mut w = generate(&GeneratorConfig::paper_batch(ps).with_jobs(n).with_seed(seed));
    w.scale_to_load(320, load);
    w
}

fn het_workload(ps: f64, pd: f64, load: f64, seed: u64, n: usize) -> Workload {
    let mut w = generate(
        &GeneratorConfig::paper_heterogeneous(ps, pd)
            .with_jobs(n)
            .with_seed(seed),
    );
    w.scale_to_load(320, load);
    w
}

fn run(algo: Algorithm, cs: u32, w: &Workload) -> RunMetrics {
    Experiment {
        algorithm: algo,
        params: SchedParams::with_cs(cs),
        machine: MachineSpec::BLUEGENE_P,
        timeline: None,
        attribution: false,
        reconfig_cost: None,
    }
    .run(w)
    .expect("simulation completes")
}

/// Figure 2 / §III-A: on the motivating example, Delayed-LOS achieves
/// utilization 10/10 where LOS achieves 7/10.
#[test]
fn figure2_delayed_los_beats_los_packing() {
    let jobs = vec![
        JobSpec::batch(1, 0, 224, 100), // 7 units — head
        JobSpec::batch(2, 0, 128, 100), // 4 units
        JobSpec::batch(3, 0, 192, 100), // 6 units
    ];
    let w = Workload::from_jobs(jobs);
    let los = run(Algorithm::Los, 7, &w);
    let dl = run(Algorithm::DelayedLos, 7, &w);
    // Both schedules finish all work at t=200, so *makespan-wide*
    // utilization ties; the packing difference shows up as waiting time:
    // Delayed-LOS delays only the head (waits {100,0,0}), LOS delays the
    // pair ({0,100,100}).
    assert!(
        dl.mean_wait < los.mean_wait,
        "Delayed-LOS wait {} must beat LOS {}",
        dl.mean_wait,
        los.mean_wait
    );
    assert!((dl.mean_wait - 100.0 / 3.0).abs() < 1.0);
    assert!((los.mean_wait - 200.0 / 3.0).abs() < 1.0);
    assert_eq!(dl.jobs, 3);
    assert_eq!(los.jobs, 3);
}

/// §V-A headline: averaged over seeds at high load with variable job
/// sizes (low P_S), Delayed-LOS beats LOS on mean waiting time.
#[test]
fn delayed_los_beats_los_on_variable_size_workloads() {
    let mut dl_total = 0.0;
    let mut los_total = 0.0;
    for seed in 0..5u64 {
        let w = batch_workload(0.2, 0.9, 100 + seed, 300);
        dl_total += run(Algorithm::DelayedLos, 8, &w).mean_wait;
        los_total += run(Algorithm::Los, 8, &w).mean_wait;
    }
    assert!(
        dl_total < los_total,
        "Delayed-LOS mean wait {dl_total:.0} should beat LOS {los_total:.0}"
    );
}

/// §V-B headline: Hybrid-LOS beats LOS-D and EASY-D on heterogeneous
/// workloads (averaged over seeds).
#[test]
fn hybrid_los_beats_dedicated_baselines() {
    let mut hybrid = 0.0;
    let mut los_d = 0.0;
    let mut easy_d = 0.0;
    for seed in 0..5u64 {
        let w = het_workload(0.2, 0.5, 0.9, 200 + seed, 300);
        hybrid += run(Algorithm::HybridLos, 8, &w).mean_wait;
        los_d += run(Algorithm::LosD, 8, &w).mean_wait;
        easy_d += run(Algorithm::EasyD, 8, &w).mean_wait;
    }
    assert!(
        hybrid < los_d,
        "Hybrid-LOS wait {hybrid:.0} should beat LOS-D {los_d:.0}"
    );
    assert!(
        hybrid < easy_d,
        "Hybrid-LOS wait {hybrid:.0} should beat EASY-D {easy_d:.0}"
    );
}

/// Every algorithm in Table III drains every workload it is built for.
#[test]
fn all_twelve_table_iii_algorithms_complete_their_workloads() {
    let batch = batch_workload(0.5, 0.85, 7, 150);
    let het = het_workload(0.5, 0.5, 0.85, 7, 150);
    let mut elastic_batch = generate(
        &GeneratorConfig::paper_batch(0.5)
            .with_paper_eccs()
            .with_jobs(150)
            .with_seed(7),
    );
    elastic_batch.scale_to_load(320, 0.85);
    let mut elastic_het = generate(
        &GeneratorConfig::paper_heterogeneous(0.5, 0.5)
            .with_paper_eccs()
            .with_jobs(150)
            .with_seed(7),
    );
    elastic_het.scale_to_load(320, 0.85);

    for algo in Algorithm::PAPER_TABLE_III {
        let w = match (algo.heterogeneous(), algo.elastic()) {
            (false, false) => &batch,
            (true, false) => &het,
            (false, true) => &elastic_batch,
            (true, true) => &elastic_het,
        };
        let m = run(algo, 7, w);
        assert_eq!(m.jobs, 150, "{algo} lost jobs");
        assert!(m.utilization > 0.0 && m.utilization <= 1.0 + 1e-9, "{algo}");
        if algo.elastic() {
            assert!(m.eccs_applied > 0, "{algo} ignored ECCs");
        } else {
            assert_eq!(m.eccs_applied, 0, "{algo} applied ECCs");
        }
    }
}

/// Dedicated jobs overwhelmingly start on time at light load, under all
/// three heterogeneous schedulers. (Only the *first* future dedicated
/// job is protected by a freeze — the paper's own design — so a small
/// tail of delays from back-to-back reservations is expected.)
#[test]
fn dedicated_jobs_start_on_time_given_capacity() {
    let w = het_workload(0.8, 0.3, 0.3, 31, 120);
    for algo in [Algorithm::EasyD, Algorithm::LosD, Algorithm::HybridLos] {
        let m = run(algo, 7, &w);
        assert!(
            m.dedicated_on_time as f64 >= 0.75 * m.dedicated_jobs as f64,
            "{algo}: only {}/{} dedicated jobs on time",
            m.dedicated_on_time,
            m.dedicated_jobs
        );
        assert!(
            m.mean_dedicated_delay < m.mean_runtime,
            "{algo}: mean dedicated delay {} out of proportion",
            m.mean_dedicated_delay
        );
    }
}

/// Determinism: identical configuration → identical metrics, even across
/// the parallel sweep harness.
#[test]
fn simulations_are_deterministic() {
    let w = batch_workload(0.5, 0.9, 13, 200);
    let runs = elastisched::parallel_map(vec![0u8; 4], |_| run(Algorithm::DelayedLos, 7, &w));
    for r in &runs[1..] {
        assert_eq!(*r, runs[0]);
    }
}

/// The ECC processor's effect is visible: an elastic run differs from a
/// non-elastic run of the same trace, and job durations actually moved.
#[test]
fn eccs_change_schedules() {
    let mut w = generate(
        &GeneratorConfig::paper_batch(0.5)
            .with_paper_eccs()
            .with_jobs(200)
            .with_seed(23),
    );
    w.scale_to_load(320, 0.9);
    assert!(!w.eccs.is_empty());
    let plain = run(Algorithm::DelayedLos, 7, &w);
    let elastic = run(Algorithm::DelayedLosE, 7, &w);
    assert!(elastic.eccs_applied > 0);
    assert_ne!(
        plain.mean_runtime, elastic.mean_runtime,
        "ET/RT commands must change effective runtimes"
    );
}

/// Conservation: total busy area equals the sum of per-job work, for a
/// mixed heterogeneous + elastic run.
#[test]
fn busy_area_conservation_end_to_end() {
    let mut w = generate(
        &GeneratorConfig::paper_heterogeneous(0.5, 0.4)
            .with_paper_eccs()
            .with_jobs(250)
            .with_seed(5),
    );
    w.scale_to_load(320, 0.95);
    let exp = Experiment::new(Algorithm::HybridLosE);
    let r = exp.run_raw(&w).expect("simulation completes");
    let work: f64 = r
        .outcomes
        .iter()
        .map(|o| o.num as f64 * o.runtime.as_secs_f64())
        .sum();
    assert!(
        (r.busy_area - work).abs() < 1e-6,
        "busy area {} != total work {work}",
        r.busy_area
    );
}

/// FCFS is never better than EASY on mean wait (backfilling only adds
/// opportunities) — sanity anchor for the baseline ordering.
#[test]
fn easy_dominates_fcfs() {
    let mut fcfs_total = 0.0;
    let mut easy_total = 0.0;
    for seed in 0..3u64 {
        let w = batch_workload(0.5, 0.9, 300 + seed, 250);
        fcfs_total += run(Algorithm::Fcfs, 7, &w).mean_wait;
        easy_total += run(Algorithm::Easy, 7, &w).mean_wait;
    }
    assert!(
        easy_total <= fcfs_total,
        "EASY {easy_total:.0} must not lose to FCFS {fcfs_total:.0}"
    );
}
