//! Quickstart: generate the paper's synthetic workload, schedule it with
//! every batch algorithm, and print the paper's three metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use elastisched::prelude::*;

fn main() {
    // The paper's setup (§V): a 500-job batch workload on a simulated
    // BlueGene/P (320 processors in 32-processor node groups), small-job
    // probability P_S = 0.5, offered load 0.9.
    let mut workload = generate(&GeneratorConfig::paper_batch(0.5).with_jobs(500).with_seed(42));
    workload.scale_to_load(320, 0.9);
    println!(
        "workload: {} jobs, mean size {:.0} procs, mean runtime {:.0}s, load {:.2}\n",
        workload.len(),
        workload.mean_size(),
        workload.mean_runtime(),
        workload.offered_load(320)
    );

    println!(
        "{:<14} {:>12} {:>14} {:>10}",
        "algorithm", "utilization", "mean wait (s)", "slowdown"
    );
    for algo in [
        Algorithm::Fcfs,
        Algorithm::Easy,
        Algorithm::Conservative,
        Algorithm::Los,
        Algorithm::DelayedLos,
    ] {
        let metrics = Experiment::new(algo)
            .run(&workload)
            .expect("simulation completes");
        println!(
            "{:<14} {:>12.4} {:>14.1} {:>10.3}",
            metrics.scheduler, metrics.utilization, metrics.mean_wait, metrics.slowdown
        );
    }

    println!(
        "\nDelayed-LOS is the paper's Algorithm 1: it lets the Basic_DP pick the\n\
         utilization-maximizing job set and only forces the queue head through\n\
         after C_s skipped cycles."
    );
}
