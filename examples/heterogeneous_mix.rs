//! Heterogeneous workloads: rigid real-time slots among flexible batch
//! jobs — the paper's §I-B motivating scenario.
//!
//! A traffic-analytics center runs background simulation jobs all day
//! (batch, deadline-insensitive) plus rigid real-time processing windows
//! (dedicated jobs that *must* start at fixed times: rush-hour traffic
//! feeds, satellite passes). A single scheduler has to serve both.
//!
//! ```text
//! cargo run --release --example heterogeneous_mix
//! ```

use elastisched::prelude::*;

/// Build the scenario by hand: 2 simulated days with two rush-hour
/// windows per day plus a stream of background batch jobs.
fn build_scenario() -> Workload {
    let mut jobs = Vec::new();
    let mut id = 1u64;
    let day = 86_400u64;

    for d in 0..2u64 {
        // Rigid real-time windows: traffic feeds at 07:30 and 16:30,
        // each needing 128 processors for 2 hours, booked 6h in advance.
        for &start_hhmm in &[(7 * 3600 + 1800), (16 * 3600 + 1800)] {
            let start = d * day + start_hhmm;
            jobs.push(JobSpec::dedicated(
                id,
                start.saturating_sub(6 * 3600),
                128,
                2 * 3600,
                start,
            ));
            id += 1;
        }
        // A satellite pass at 02:00 needing the whole machine for 30 min.
        let pass = d * day + 2 * 3600;
        jobs.push(JobSpec::dedicated(
            id,
            pass.saturating_sub(12 * 3600),
            320,
            1800,
            pass,
        ));
        id += 1;
    }

    // Background simulation jobs arriving round the clock.
    let mut t = 0u64;
    let mut k = 0u64;
    while t < 2 * day {
        let num = 32 * (1 + (k * 7 % 6) as u32); // 32..192 procs
        let dur = 1800 + (k * 977) % 7200; // 0.5h..2.5h
        jobs.push(JobSpec::batch(id, t, num, dur));
        id += 1;
        k += 1;
        t += 600 + (k * 131) % 900;
    }
    Workload::from_jobs(jobs)
}

fn main() {
    let w = build_scenario();
    println!(
        "scenario: {} jobs over 2 days, {} rigid dedicated windows\n",
        w.len(),
        w.dedicated_count()
    );
    println!(
        "{:<12} {:>11} {:>14} {:>9} {:>16} {:>9}",
        "algorithm", "utilization", "mean wait (s)", "slowdown", "ded delay (s)", "on-time"
    );
    for algo in [Algorithm::EasyD, Algorithm::LosD, Algorithm::HybridLos] {
        let m = Experiment::new(algo).run(&w).expect("simulation completes");
        println!(
            "{:<12} {:>11.4} {:>14.1} {:>9.3} {:>16.1} {:>6}/{}",
            m.scheduler,
            m.utilization,
            m.mean_wait,
            m.slowdown,
            m.mean_dedicated_delay,
            m.dedicated_on_time,
            m.dedicated_jobs,
        );
    }
    println!(
        "\nHybrid-LOS (the paper's Algorithm 2) makes explicit reservations for\n\
         the dedicated windows and packs batch jobs around them with the\n\
         Reservation_DP, instead of EASY-D's one-job-at-a-time backfill.\n\
         Note the trade-off visible above: Algorithm 2's lines 35-37 start a\n\
         batch head whose skip budget is exhausted WITHOUT consulting the\n\
         dedicated freeze, so under sustained batch pressure Hybrid-LOS buys\n\
         its utilization lead partly with dedicated-start delays — a metric\n\
         the paper does not report (see EXPERIMENTS.md, deviation 3)."
    );
}
