//! Working with workload traces: SWF in, CWF out (paper §IV-C).
//!
//! The Cloud Workload Format extends the Standard Workload Format with
//! fields 19–21 (requested start time, request type, amount), so every
//! SWF file is a valid CWF file. This example parses an SWF fragment,
//! upgrades it to CWF by adding a dedicated job and Elastic Control
//! Commands, round-trips it through text, and schedules it.
//!
//! ```text
//! cargo run --release --example trace_tools
//! ```

use elastisched::prelude::*;
use elastisched_workload::cwf::CwfRecord;

const SWF_FRAGMENT: &str = "\
; Version: 2.2
; Computer: synthetic 320-processor BlueGene/P
; Note: wait-time fields are outputs and ignored on input
1 0 -1 3600 -1 -1 -1 128 4000 -1 1 3 1 -1 1 -1 -1 -1
2 120 -1 1800 -1 -1 -1 64 2000 -1 1 3 1 -1 1 -1 -1 -1
3 240 -1 7200 -1 -1 -1 256 7500 -1 1 5 2 -1 1 -1 -1 -1
4 600 -1 900 -1 -1 -1 32 1000 -1 1 7 2 -1 1 -1 -1 -1
";

fn main() {
    // Parse SWF.
    let swf = SwfFile::parse(SWF_FRAGMENT).expect("valid SWF");
    println!(
        "parsed SWF: {} header lines, {} jobs, offered load {:.3}",
        swf.comments.len(),
        swf.records.len(),
        swf.offered_load(320)
    );

    // Upgrade to CWF: same jobs + a dedicated job + two ECCs.
    let mut cwf = CwfFile::parse(SWF_FRAGMENT).expect("SWF is valid CWF");
    cwf.records.push(CwfRecord::submit_dedicated(
        5, 300, 96, 1200, 1200, 5_000, // rigid start at t=5000
    ));
    cwf.records
        .push(CwfRecord::ecc(3, 3_000, EccKind::ExtendTime, 1_800));
    cwf.records
        .push(CwfRecord::ecc(2, 1_000, EccKind::ReduceTime, 600));

    // Round-trip through text (what `escli generate` writes).
    let text = cwf.to_text();
    println!("\nCWF text ({} bytes):\n{text}", text.len());
    let reparsed = CwfFile::parse(&text).expect("round-trip");
    assert_eq!(reparsed.records, cwf.records);

    // Schedule it.
    let w = reparsed.to_workload();
    println!(
        "workload: {} jobs ({} dedicated), {} ECCs",
        w.len(),
        w.dedicated_count(),
        w.eccs.len()
    );
    let m = Experiment::new(Algorithm::HybridLosE)
        .run(&w)
        .expect("simulation completes");
    println!(
        "\nHybrid-LOS-E: utilization {:.4}, mean wait {:.1}s, slowdown {:.3}, \
         ECCs applied {}, dedicated on time {}/{}",
        m.utilization,
        m.mean_wait,
        m.slowdown,
        m.eccs_applied,
        m.dedicated_on_time,
        m.dedicated_jobs
    );
}
