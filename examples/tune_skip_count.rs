//! Tuning the maximum skip count `C_s` — the paper's Figure 5/6 study,
//! in miniature.
//!
//! Delayed-LOS's single knob is `C_s`, the number of scheduling cycles
//! the queue head may be skipped in favour of better-packing job sets.
//! The paper finds a sweet spot around 7–8 for balanced workloads
//! (P_S = 0.5) and insensitivity beyond ≈3 for small-job-heavy ones
//! (P_S = 0.8). This example sweeps `C_s` and prints both curves.
//!
//! ```text
//! cargo run --release --example tune_skip_count
//! ```

use elastisched::prelude::*;
use elastisched::parallel_map;

fn sweep(p_small: f64, loads_seed: u64) -> Vec<(u32, f64, f64)> {
    let mut w = generate(
        &GeneratorConfig::paper_batch(p_small)
            .with_jobs(400)
            .with_seed(loads_seed),
    );
    w.scale_to_load(320, 0.9);
    let cs_values: Vec<u32> = vec![0, 1, 2, 3, 5, 7, 10, 14, 20];
    parallel_map(cs_values, |cs| {
        let m = Experiment::new(Algorithm::DelayedLos)
            .with_cs(cs)
            .run(&w)
            .expect("simulation completes");
        (cs, m.utilization, m.mean_wait)
    })
}

fn main() {
    for (p_small, seed) in [(0.5, 11u64), (0.8, 12u64)] {
        println!("P_S = {p_small} (Load ≈ 0.9):");
        println!("{:>5} {:>12} {:>14}", "C_s", "utilization", "mean wait (s)");
        let rows = sweep(p_small, seed);
        let best = rows
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .map(|r| r.0)
            .unwrap();
        for (cs, util, wait) in &rows {
            let marker = if *cs == best { "  ← best wait" } else { "" };
            println!("{cs:>5} {util:>12.4} {wait:>14.1}{marker}");
        }
        println!();
    }
    println!(
        "C_s = 0 degenerates to LOS's start-the-head-right-away rule; large\n\
         C_s risks starving the head. The paper's guidance: pick C_s\n\
         empirically per workload mix (small-job-heavy mixes need less)."
    );
}
