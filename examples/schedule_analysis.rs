//! Deep-dive analysis of one schedule: per-class breakdowns, fairness,
//! utilization timeline, Gantt chart, and queue-depth sampling.
//!
//! Answers the questions the paper's aggregate metrics can't: *who* pays
//! for a packing improvement (small vs large jobs), how bursty the
//! machine's occupancy is over time, and how deep the queue gets.
//!
//! ```text
//! cargo run --release --example schedule_analysis
//! ```

use elastisched::prelude::*;
use elastisched_metrics::{
    breakdown, gantt, jain_fairness, occupancy, sparkline, utilization_profile, validate_schedule,
};
use elastisched_sim::Engine;

fn analyze(algo: Algorithm, w: &Workload) {
    let mut scheduler = algo.build(Default::default());
    let mut engine = Engine::new(
        Machine::bluegene_p(),
        &mut scheduler,
        algo.ecc_policy(),
    );
    engine.enable_sampling(Duration::from_secs(600));
    engine.load(&w.jobs, &w.eccs).expect("valid workload");
    let r = engine.run().expect("simulation completes");

    println!("=== {} ===", algo.name());
    // Independent feasibility check.
    let violations = validate_schedule(&r.outcomes, 320);
    assert!(violations.is_empty(), "violations: {violations:?}");
    let occ = occupancy(&r.outcomes);
    println!(
        "feasible schedule; peak occupancy {} / 320 procs, utilization {:.4}",
        occ.peak,
        r.mean_utilization()
    );

    // Who waits? Small vs large jobs (the paper's small = ≤ 3 units).
    let b = breakdown(&r.outcomes, 96);
    println!(
        "small jobs ({:>3}): mean wait {:>8.1}s   large jobs ({:>3}): mean wait {:>8.1}s",
        b.small.jobs, b.small.mean_wait, b.large.jobs, b.large.mean_wait
    );

    // Fairness of per-job slowdowns.
    let slowdowns: Vec<f64> = r
        .outcomes
        .iter()
        .map(|o| {
            let run = o.runtime.as_secs_f64().max(10.0);
            ((o.wait.as_secs_f64() + o.runtime.as_secs_f64()) / run).max(1.0)
        })
        .collect();
    println!("Jain fairness of slowdowns: {:.3}", jain_fairness(&slowdowns));

    // Utilization over time.
    let bucket = (r.makespan.as_secs() / 72).max(1);
    let profile = utilization_profile(&r.outcomes, 320, bucket);
    println!("utilization  {}", sparkline(&profile));

    // Queue depth over time, from engine samples.
    let max_wait = r.samples.iter().map(|s| s.waiting).max().unwrap_or(0);
    let depth_profile: Vec<(u64, f64)> = r
        .samples
        .iter()
        .map(|s| {
            (
                s.at.as_secs(),
                if max_wait == 0 {
                    0.0
                } else {
                    s.waiting as f64 / max_wait as f64
                },
            )
        })
        .collect();
    println!(
        "queue depth  {}  (peak {} waiting)",
        sparkline(&depth_profile),
        max_wait
    );
    println!();
}

fn main() {
    let mut w = generate(&GeneratorConfig::paper_batch(0.2).with_jobs(300).with_seed(17));
    w.scale_to_load(320, 0.9);
    println!(
        "workload: {} jobs, mean size {:.0} procs, load {:.2}\n",
        w.len(),
        w.mean_size(),
        w.offered_load(320)
    );
    for algo in [Algorithm::Easy, Algorithm::Los, Algorithm::DelayedLos] {
        analyze(algo, &w);
    }

    // Zoom into the first jobs of the Delayed-LOS schedule.
    let r = Experiment::new(Algorithm::DelayedLos)
        .run_raw(&w)
        .expect("simulation completes");
    println!("first 20 jobs of the Delayed-LOS schedule:");
    println!("{}", gantt(&r.outcomes, 96, 20));
}
