//! Runtime elasticity: Elastic Control Commands in action (paper §III-C).
//!
//! Users extend or shrink the execution time of previously submitted
//! jobs *on the fly* (ET/RT commands); the `-E` schedulers process them
//! through the ECC processor. The example also demonstrates the paper's
//! future-work extension implemented by this library: elasticity in the
//! resource dimension (EP/RP — growing and shrinking a *running* job's
//! processor allocation).
//!
//! ```text
//! cargo run --release --example elastic_commands
//! ```

use elastisched::prelude::*;
use elastisched_sim::{simulate, Engine};

fn main() {
    // --- Part 1: time elasticity on a synthetic elastic workload. -----
    let mut w = generate(
        &GeneratorConfig::paper_batch(0.5)
            .with_paper_eccs() // P_E = 0.2, P_R = 0.1
            .with_jobs(400)
            .with_seed(7),
    );
    w.scale_to_load(320, 0.9);
    println!(
        "elastic workload: {} jobs, {} ECCs (ET extends, RT shrinks)\n",
        w.len(),
        w.eccs.len()
    );
    println!(
        "{:<16} {:>11} {:>14} {:>9} {:>13}",
        "algorithm", "utilization", "mean wait (s)", "slowdown", "ECCs applied"
    );
    for algo in [
        Algorithm::EasyE,
        Algorithm::LosE,
        Algorithm::DelayedLosE,
    ] {
        let m = Experiment::new(algo).run(&w).expect("simulation completes");
        println!(
            "{:<16} {:>11.4} {:>14.1} {:>9.3} {:>13}",
            format!("{}-E", m.scheduler),
            m.utilization,
            m.mean_wait,
            m.slowdown,
            m.eccs_applied
        );
    }

    // --- Part 2: a concrete ET/RT trace, step by step. -----------------
    println!("\n-- single-job ET/RT walkthrough --");
    let jobs = vec![JobSpec::batch(1, 0, 320, 1_000)];
    let eccs = vec![
        EccSpec::extend_time(JobId(1), SimTime::from_secs(200), 500), // +500s
        EccSpec::reduce_time(JobId(1), SimTime::from_secs(400), 200), // -200s
    ];
    let r = simulate(
        Machine::bluegene_p(),
        elastisched_sched::DelayedLos::new(),
        EccPolicy::time_only(),
        &jobs,
        &eccs,
    )
    .expect("simulation completes");
    let o = &r.outcomes[0];
    println!(
        "job 1: submitted 1000s of work, +500s at t=200, -200s at t=400 \
         → finished at t={} (expected 1300)",
        o.finished.as_secs()
    );

    // --- Part 3: resource-dimension elasticity (paper §VI future work).
    println!("\n-- processor-dimension elasticity (EP/RP) --");
    let jobs = vec![JobSpec::batch(1, 0, 64, 600), JobSpec::batch(2, 0, 128, 600)];
    let eccs = vec![
        EccSpec {
            job: JobId(1),
            issue_at: SimTime::from_secs(100),
            kind: EccKind::ExtendProcs,
            amount: 64,
        },
        EccSpec {
            job: JobId(2),
            issue_at: SimTime::from_secs(300),
            kind: EccKind::ReduceProcs,
            amount: 64,
        },
    ];
    let mut engine = Engine::new(
        Machine::bluegene_p(),
        elastisched_sched::DelayedLos::new(),
        EccPolicy::with_resource_elasticity(),
        );
    engine.load(&jobs, &eccs).expect("valid workload");
    let r = engine.run().expect("simulation completes");
    for o in &r.outcomes {
        println!(
            "job {}: finished holding {} processors",
            o.id.0, o.num
        );
    }
    println!(
        "job 1 grew 64→128 processors mid-run; job 2 shrank 128→64,\n\
         releasing node groups back to the machine."
    );
}
